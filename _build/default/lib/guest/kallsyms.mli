(** /proc/kallsyms access, with the paper's deferred fixup.

    §4.3: eagerly rewriting kallsyms during FGKASLR costs ~22% of overall
    boot time, yet the kernel boots fine without it — so the paper
    proposes deferring the fixup until kallsyms is first examined (which,
    for single-function microVM workloads, may be never). This module
    implements both behaviours: if the boot left kallsyms stale, the
    first {!lookup} pays the fixup cost (reading the displacement blob
    from setup data and rewriting the table); subsequent lookups are
    cheap binary searches.

    kptr_restrict is modelled too: unprivileged readers get zeroed
    addresses, the leak hygiene that complements KASLR (§3.1). *)

type t

val create : unit -> t
(** Per-boot kallsyms state (whether the deferred fixup ran). *)

exception Lookup_failed of string

val lookup :
  t ->
  Imk_vclock.Charge.t ->
  Imk_memory.Guest_mem.t ->
  Boot_params.t ->
  va:int ->
  int
(** [lookup t charge mem params ~va] resolves a kernel address to a
    function id (the stand-in for a symbol name), triggering the deferred
    fixup on first use when the table is stale. Charges
    [kallsyms_ns_per_sym × modeled_functions] for the fixup and a
    negligible per-lookup cost. Raises {!Lookup_failed} if [va] is not a
    function entry or the stale table cannot be repaired (no setup
    data). *)

val read_for_user :
  t ->
  Imk_vclock.Charge.t ->
  Imk_memory.Guest_mem.t ->
  Boot_params.t ->
  privileged:bool ->
  index:int ->
  int * int
(** [read_for_user t charge mem params ~privileged ~index] models reading
    the [index]-th /proc/kallsyms line: returns [(address, id)] where
    [address] is zeroed for unprivileged readers (kptr_restrict). Triggers
    the deferred fixup like {!lookup}. *)

val fixed_up : t -> bool
(** Whether the deferred fixup has run in this boot (always false when the
    table was eagerly fixed at boot — there was nothing to defer). *)
