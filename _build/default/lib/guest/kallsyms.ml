open Imk_memory

type t = { mutable lazily_fixed : bool }

let create () = { lazily_fixed = false }

exception Lookup_failed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Lookup_failed s)) fmt

let table_pa params =
  Boot_params.va_to_pa params
    (params.Boot_params.kernel.Boot_params.link_kallsyms_va
    + Boot_params.delta params)

let ensure_fixed t charge mem params =
  if not (params.Boot_params.kallsyms_fixed || t.lazily_fixed) then begin
    match params.Boot_params.setup_data_pa with
    | None -> fail "kallsyms stale and no setup data to repair it"
    | Some pa ->
        let pairs = Boot_params.setup_data_read mem ~pa in
        let plan = Imk_randomize.Fgkaslr.plan_of_pairs pairs in
        Imk_vclock.Charge.span charge Imk_vclock.Trace.Linux_boot
          "kallsyms-lazy-fixup" (fun () ->
            Imk_randomize.Fgkaslr.fixup_kallsyms mem ~pa:(table_pa params) plan;
            let cm = Imk_vclock.Charge.model charge in
            let per = cm.Imk_vclock.Cost_model.kallsyms_ns_per_sym in
            let n = params.Boot_params.kernel.Boot_params.modeled_functions in
            Imk_vclock.Charge.pay charge
              (int_of_float (per *. float_of_int n)));
        t.lazily_fixed <- true
  end

let read_entry mem params k =
  let pa = table_pa params in
  let header = Imk_kernel.Image.kallsyms_header_bytes in
  let entry = Imk_kernel.Image.kallsyms_entry_bytes in
  let off_pa = pa + header + (k * entry) in
  let off = Guest_mem.get_u32 mem ~pa:off_pa in
  let id = Guest_mem.get_u32 mem ~pa:(off_pa + 4) in
  (off, id)

let count_and_base mem params =
  let pa = table_pa params in
  (Guest_mem.get_addr mem ~pa, Guest_mem.get_u32 mem ~pa:(pa + 8))

let lookup t charge mem params ~va =
  ensure_fixed t charge mem params;
  Imk_vclock.Charge.pay charge 300 (* binary search over the table *);
  let base, count = count_and_base mem params in
  let target_off = va - base in
  let rec search lo hi =
    if lo > hi then fail "no symbol at va %#x" va
    else
      let mid = (lo + hi) / 2 in
      let off, id = read_entry mem params mid in
      if off = target_off then id
      else if off < target_off then search (mid + 1) hi
      else search lo (mid - 1)
  in
  search 0 (count - 1)

let read_for_user t charge mem params ~privileged ~index =
  ensure_fixed t charge mem params;
  Imk_vclock.Charge.pay charge 150;
  let base, count = count_and_base mem params in
  if index < 0 || index >= count then fail "kallsyms index %d out of range" index;
  let off, id = read_entry mem params index in
  let addr = if privileged then base + off else 0 in
  (addr, id)

let fixed_up t = t.lazily_fixed
