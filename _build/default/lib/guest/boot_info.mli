(** Boot-time system information: the zero page / PVH start info.

    §2.2: direct-boot protocols differ mainly in "how boot-time system
    information is conveyed to the nascent kernel". This module is that
    information: the kernel command line, the e820 memory map, and the
    initrd location, written into guest memory by the monitor before
    entry (at the conventional real-mode addresses) and read back by the
    bootstrap loader (which honours [nokaslr]/[nofgkaslr]) and by the
    booting kernel (which validates it — a corrupt zero page is a
    non-booting guest).

    The two protocols share content and differ in magic and layout
    framing; both encodings round-trip through {!write}/{!read}. *)

type protocol = Proto_linux64 | Proto_pvh

val protocol_name : protocol -> string

type e820_entry = {
  base : int;
  size : int;
  usable : bool;  (** usable RAM vs reserved *)
}

val e820_of_mem : mem_bytes:int -> e820_entry list
(** The classic PC map: usable low memory under 640 KiB, the reserved
    EBDA/ROM hole up to 1 MiB, usable RAM above. *)

type t = {
  proto : protocol;
  cmdline : string;
  e820 : e820_entry list;
  initrd : (int * int) option;  (** guest-phys address and length *)
}

val zero_page_pa : int
(** Where the structure lives: 0x7000, in the traditional setup area. *)

val cmdline_pa : int
(** Where the command-line string lives: 0x20000. *)

val max_cmdline : int
(** Longest accepted command line (2047 bytes, as in Linux). *)

exception Invalid of string
(** Raised by {!read}/{!validate} on a corrupt structure, and by {!write}
    on an over-long command line or too many e820 entries. *)

val write : Imk_memory.Guest_mem.t -> t -> unit
(** [write mem t] encodes the structure at {!zero_page_pa} and the
    command line at {!cmdline_pa}. *)

val read : Imk_memory.Guest_mem.t -> t
(** [read mem] decodes whatever is at {!zero_page_pa}. *)

val validate : Imk_memory.Guest_mem.t -> mem_bytes:int -> t
(** [validate mem ~mem_bytes] is {!read} plus the checks a kernel
    performs before trusting the map: e820 entries in-bounds and
    non-overlapping, usable memory covering most of the guest, initrd
    (if any) inside usable RAM. *)

val has_flag : t -> string -> bool
(** [has_flag t "nokaslr"] — whitespace-delimited command-line flag
    lookup, as the kernel's early parameter parsing does. *)
