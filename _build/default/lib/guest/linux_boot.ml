let time_ns (config : Imk_kernel.Config.t) ~mem_bytes =
  let gib = float_of_int mem_bytes /. (1024. *. 1024. *. 1024.) in
  let ms = config.linux_boot_ms +. (config.memmap_ms_per_gib *. gib) in
  Imk_util.Units.ms_to_ns ms

let run charge (config : Imk_kernel.Config.t) mem params =
  Imk_vclock.Charge.span charge Imk_vclock.Trace.Linux_boot "linux-boot"
    (fun () ->
      (* the kernel trusts nothing: boot info, initrd and its own
         relocated structure are all checked before init runs *)
      let info =
        try Boot_info.validate mem ~mem_bytes:params.Boot_params.mem_bytes
        with Boot_info.Invalid m -> raise (Runtime.Panic ("boot info: " ^ m))
      in
      (match info.Boot_info.initrd with
      | None -> ()
      | Some (pa, len) -> (
          try
            Imk_kernel.Initrd.validate_in_guest mem ~pa ~len;
            (* unpacking the ramdisk is part of the boot *)
            let cm = Imk_vclock.Charge.model charge in
            Imk_vclock.Charge.pay charge
              (Imk_vclock.Cost_model.memcpy_cost cm ~in_guest:true
                 (Imk_kernel.Config.modeled_of_actual config len))
          with Imk_kernel.Initrd.Corrupt m -> raise (Runtime.Panic m)));
      let stats = Runtime.verify_boot mem params in
      Imk_vclock.Charge.pay charge
        (time_ns config ~mem_bytes:params.Boot_params.mem_bytes);
      Imk_vclock.Trace.tracepoint
        (Imk_vclock.Charge.trace charge)
        Imk_vclock.Trace.Linux_boot "init";
      stats)
