open Imk_memory
open Imk_kernel

exception Panic of string

let panic fmt = Printf.ksprintf (fun s -> raise (Panic s)) fmt

type verify_stats = {
  functions_visited : int;
  sites_verified : int;
  rodata_verified : int;
  extab_verified : int;
  kallsyms_verified : int;
  orc_verified : int;
}

let read_mem mem params ~va ~len ~what =
  let pa = Boot_params.va_to_pa params va in
  try Guest_mem.read_bytes mem ~pa ~len
  with Guest_mem.Fault m -> panic "%s at va %#x: %s" what va m

let read_fn_header mem params ~va =
  let hdr = read_mem mem params ~va ~len:Function_graph.fn_header_bytes ~what:"function header" in
  (* raw 64-bit read: a bad pointer may land on arbitrary bytes *)
  let magic = Imk_util.Byteio.get_i64 hdr 0 in
  let id = Imk_util.Byteio.get_u32 hdr 8 in
  let n_sites = Imk_util.Byteio.get_u32 hdr 12 in
  let size = Imk_util.Byteio.get_u32 hdr 16 in
  if magic <> Int64.of_int (Function_graph.fn_magic id) then
    panic "bad function magic at va %#x (claims id %d)" va id;
  (id, n_sites, size)

let fn_at mem params ~va =
  let pa = Boot_params.va_to_pa params va in
  match Guest_mem.read_bytes mem ~pa ~len:Function_graph.fn_header_bytes with
  | exception Guest_mem.Fault _ -> None
  | hdr ->
      let magic = Imk_util.Byteio.get_i64 hdr 0 in
      let id = Imk_util.Byteio.get_u32 hdr 8 in
      if magic = Int64.of_int (Function_graph.fn_magic id) then Some id
      else None

let check_fn mem params ~va ~expect_id ~what =
  let id, _, _ = read_fn_header mem params ~va in
  if id <> expect_id then
    panic "%s: va %#x holds function %d, expected %d" what va id expect_id

let target_va_of_site kind value =
  match kind with
  | Imk_elf.Relocation.Abs64 -> value
  | Imk_elf.Relocation.Abs32 -> (
      try Addr.va_of_low32 value
      with Invalid_argument _ -> panic "abs32 site holds non-kernel value %#x" value)
  | Imk_elf.Relocation.Inv32 -> Addr.inverse_base - value

let walk_functions mem params =
  let n = params.Boot_params.kernel.Boot_params.n_functions in
  let visited = Array.make n false in
  let fn_va = Array.make n (-1) in
  let queue = Queue.create () in
  let sites = ref 0 in
  Queue.add params.Boot_params.entry_va queue;
  while not (Queue.is_empty queue) do
    let va = Queue.pop queue in
    let id, n_sites, _size = read_fn_header mem params ~va in
    if id < 0 || id >= n then panic "function id %d out of range at %#x" id va;
    if not visited.(id) then begin
      visited.(id) <- true;
      fn_va.(id) <- va;
      for k = 0 to n_sites - 1 do
        let site_va =
          va + Function_graph.fn_header_bytes + (k * Function_graph.site_bytes)
        in
        let rec_bytes =
          read_mem mem params ~va:site_va ~len:Function_graph.site_bytes
            ~what:"call site"
        in
        let kind = Image.site_kind_of_code (Imk_util.Byteio.get_u8 rec_bytes 0) in
        let target_id = Imk_util.Byteio.get_u32 rec_bytes 4 in
        let value =
          match kind with
          | Imk_elf.Relocation.Abs64 -> Imk_util.Byteio.get_addr rec_bytes 8
          | Imk_elf.Relocation.Abs32 | Imk_elf.Relocation.Inv32 ->
              Imk_util.Byteio.get_u32 rec_bytes 8
        in
        let target_va = target_va_of_site kind value in
        check_fn mem params ~va:target_va ~expect_id:target_id
          ~what:(Printf.sprintf "call from fn %d via %s" id
                   (Imk_elf.Relocation.kind_name kind));
        incr sites;
        if target_id >= 0 && target_id < n && not visited.(target_id) then
          Queue.add target_va queue
      done
    end
  done;
  let count = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 visited in
  if count <> n then
    panic "only %d of %d functions reachable after boot" count n;
  (count, !sites, fn_va)

let verify_rodata mem params =
  let info = params.Boot_params.kernel in
  let delta = Boot_params.delta params in
  let va = info.Boot_params.link_rodata_va + delta in
  let header = read_mem mem params ~va ~len:Image.rodata_header_bytes ~what:"rodata" in
  let count = Imk_util.Byteio.get_u32 header 0 in
  for k = 0 to count - 1 do
    let entry_va = va + Image.rodata_header_bytes + (k * Image.rodata_entry_bytes) in
    let e = read_mem mem params ~va:entry_va ~len:Image.rodata_entry_bytes ~what:"rodata entry" in
    let ptr = Imk_util.Byteio.get_addr e 0 in
    let id = Imk_util.Byteio.get_u32 e 8 in
    check_fn mem params ~va:ptr ~expect_id:id ~what:"rodata pointer"
  done;
  count

let verify_kallsyms mem params =
  let info = params.Boot_params.kernel in
  let delta = Boot_params.delta params in
  let va = info.Boot_params.link_kallsyms_va + delta in
  let header = read_mem mem params ~va ~len:Image.kallsyms_header_bytes ~what:"kallsyms" in
  let base = Imk_util.Byteio.get_addr header 0 in
  if base <> Addr.kmap_base + delta then
    panic "kallsyms base %#x not relocated (expected %#x)" base
      (Addr.kmap_base + delta);
  let count = Imk_util.Byteio.get_u32 header 8 in
  let prev = ref (-1) in
  for k = 0 to count - 1 do
    let entry_va = va + Image.kallsyms_header_bytes + (k * Image.kallsyms_entry_bytes) in
    let e = read_mem mem params ~va:entry_va ~len:Image.kallsyms_entry_bytes ~what:"kallsyms entry" in
    let off = Imk_util.Byteio.get_u32 e 0 in
    let id = Imk_util.Byteio.get_u32 e 4 in
    if off <= !prev then panic "kallsyms not sorted at entry %d" k;
    prev := off;
    check_fn mem params ~va:(base + off) ~expect_id:id ~what:"kallsyms symbol"
  done;
  count

let verify_extab mem params =
  let info = params.Boot_params.kernel in
  let delta = Boot_params.delta params in
  let va = info.Boot_params.link_extab_va + delta in
  let header = read_mem mem params ~va ~len:Image.extab_header_bytes ~what:"extab" in
  let count = Imk_util.Byteio.get_u32 header 0 in
  let prev = ref min_int in
  for k = 0 to count - 1 do
    let entry_va = va + Image.extab_header_bytes + (k * Image.extab_entry_bytes) in
    let e = read_mem mem params ~va:entry_va ~len:Image.extab_entry_bytes ~what:"extab entry" in
    let fault_disp = Imk_util.Byteio.get_u32_signed e 0 in
    let handler_disp = Imk_util.Byteio.get_u32_signed e 4 in
    let fault_fn = Imk_util.Byteio.get_u32 e 8 in
    let handler_fn = Imk_util.Byteio.get_u32 e 12 in
    let fault_off = Imk_util.Byteio.get_u32 e 16 in
    let fault_va = entry_va + fault_disp in
    let handler_va = entry_va + 4 + handler_disp in
    (* non-strict: distinct entries may share a fault address *)
    if fault_va < !prev then panic "extab not sorted at entry %d" k;
    prev := fault_va;
    check_fn mem params ~va:(fault_va - fault_off) ~expect_id:fault_fn
      ~what:"extab fault site";
    check_fn mem params ~va:handler_va ~expect_id:handler_fn
      ~what:"extab handler"
  done;
  count

let verify_orc mem params =
  match params.Boot_params.kernel.Boot_params.link_orc_va with
  | None -> 0
  | Some link_va ->
      if not params.Boot_params.orc_fixed then 0
      else begin
        let delta = Boot_params.delta params in
        let va = link_va + delta in
        let header = read_mem mem params ~va ~len:Image.orc_header_bytes ~what:"orc" in
        let count = Imk_util.Byteio.get_u32 header 0 in
        let prev = ref min_int in
        for k = 0 to count - 1 do
          let entry_va = va + Image.orc_header_bytes + (k * Image.orc_entry_bytes) in
          let e = read_mem mem params ~va:entry_va ~len:Image.orc_entry_bytes ~what:"orc entry" in
          let ip_disp = Imk_util.Byteio.get_u32_signed e 0 in
          let ip_va = entry_va + ip_disp in
          if ip_va < !prev then panic "orc not sorted at entry %d" k;
          prev := ip_va
        done;
        count
      end

let verify_boot mem params =
  let functions_visited, sites_verified, _fn_va = walk_functions mem params in
  let rodata_verified = verify_rodata mem params in
  let extab_verified = verify_extab mem params in
  let kallsyms_verified =
    if params.Boot_params.kallsyms_fixed then verify_kallsyms mem params else 0
  in
  let orc_verified = verify_orc mem params in
  {
    functions_visited;
    sites_verified;
    rodata_verified;
    extab_verified;
    kallsyms_verified;
    orc_verified;
  }
