lib/guest/boot_info.mli: Imk_memory
