lib/guest/kallsyms.mli: Boot_params Imk_memory Imk_vclock
