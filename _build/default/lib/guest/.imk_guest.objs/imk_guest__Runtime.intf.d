lib/guest/runtime.mli: Boot_params Imk_memory
