lib/guest/kallsyms.ml: Boot_params Guest_mem Imk_kernel Imk_memory Imk_randomize Imk_vclock Printf
