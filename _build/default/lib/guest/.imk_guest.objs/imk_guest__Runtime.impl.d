lib/guest/runtime.ml: Addr Array Boot_params Function_graph Guest_mem Image Imk_elf Imk_kernel Imk_memory Imk_util Int64 Printf Queue
