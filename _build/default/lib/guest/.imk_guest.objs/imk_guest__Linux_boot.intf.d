lib/guest/linux_boot.mli: Boot_params Imk_kernel Imk_memory Imk_vclock Runtime
