lib/guest/boot_params.mli: Imk_elf Imk_kernel Imk_memory
