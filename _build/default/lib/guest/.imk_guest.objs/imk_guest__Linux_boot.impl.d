lib/guest/linux_boot.ml: Boot_info Boot_params Imk_kernel Imk_util Imk_vclock Runtime
