lib/guest/boot_params.ml: Array Byteio Bytes Imk_elf Imk_kernel Imk_memory Imk_util Option
