lib/guest/boot_info.ml: Byteio Bytes Guest_mem Imk_memory Imk_util List Printf String
