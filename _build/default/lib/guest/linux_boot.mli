(** The Linux Boot phase: from the jump to [startup_64] until init runs.

    The paper measures this portion separately and finds it independent of
    the randomization method (§5.1: nokaslr/kaslr/fgkaslr vary by at most
    4%) but linear in guest memory (Figure 10), driven by struct-page
    initialisation. The model is the per-config base time plus the
    memory-proportional term; correctness of the boot itself is checked
    separately by {!Runtime.verify_boot}. *)

val time_ns : Imk_kernel.Config.t -> mem_bytes:int -> int
(** [time_ns config ~mem_bytes] is the deterministic modelled duration. *)

val run :
  Imk_vclock.Charge.t ->
  Imk_kernel.Config.t ->
  Imk_memory.Guest_mem.t ->
  Boot_params.t ->
  Runtime.verify_stats
(** [run charge config mem params] charges the Linux Boot span, emits the
    init tracepoint (the paper's final perf timestamp) and verifies the
    kernel's integrity. Raises {!Runtime.Panic} if randomization corrupted
    the kernel. *)
