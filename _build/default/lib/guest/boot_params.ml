open Imk_util

type kernel_info = {
  link_entry_va : int;
  link_rodata_va : int;
  link_kallsyms_va : int;
  link_extab_va : int;
  link_orc_va : int option;
  n_functions : int;
  modeled_functions : int;
}

let section_va (built : Imk_kernel.Image.built) name =
  match Imk_elf.Types.section_by_name built.elf name with
  | Some s -> s.addr
  | None -> invalid_arg ("Boot_params: image has no " ^ name ^ " section")

let kernel_info_of_built (built : Imk_kernel.Image.built) =
  {
    link_entry_va = built.elf.Imk_elf.Types.entry;
    link_rodata_va = section_va built ".rodata";
    link_kallsyms_va = section_va built ".kallsyms";
    link_extab_va = section_va built ".extab";
    link_orc_va =
      Option.map
        (fun (s : Imk_elf.Types.section) -> s.addr)
        (Imk_elf.Types.section_by_name built.elf ".orc_unwind");
    n_functions = Array.length built.graph.Imk_kernel.Function_graph.fns;
    modeled_functions =
      Imk_kernel.Config.modeled_of_actual built.config
        (Array.length built.graph.Imk_kernel.Function_graph.fns);
  }

let elf_section_va (elf : Imk_elf.Types.t) name =
  match Imk_elf.Types.section_by_name elf name with
  | Some s -> s.addr
  | None -> invalid_arg ("Boot_params: image has no " ^ name ^ " section")

let kernel_info_of_elf (elf : Imk_elf.Types.t) (config : Imk_kernel.Config.t) =
  let n_functions =
    Array.fold_left
      (fun acc (s : Imk_elf.Types.symbol) ->
        if s.sym_type = Imk_elf.Types.stt_func then acc + 1 else acc)
      0 elf.symbols
  in
  {
    link_entry_va = elf.entry;
    link_rodata_va = elf_section_va elf ".rodata";
    link_kallsyms_va = elf_section_va elf ".kallsyms";
    link_extab_va = elf_section_va elf ".extab";
    link_orc_va =
      Option.map
        (fun (s : Imk_elf.Types.section) -> s.addr)
        (Imk_elf.Types.section_by_name elf ".orc_unwind");
    n_functions;
    modeled_functions = Imk_kernel.Config.modeled_of_actual config n_functions;
  }

type t = {
  phys_load : int;
  virt_base : int;
  entry_va : int;
  mem_bytes : int;
  kernel : kernel_info;
  kallsyms_fixed : bool;
  orc_fixed : bool;
  setup_data_pa : int option;
}

let delta t = t.virt_base - Imk_memory.Addr.link_base
let va_to_pa t va = va - t.virt_base + t.phys_load

let default_setup_data_pa = 0x90000
let setup_magic = 0x53455455 (* "SETU" *)

let setup_data_encode pairs =
  let n = Array.length pairs in
  let out = Bytes.create (8 + (n * 24)) in
  Byteio.set_u32 out 0 setup_magic;
  Byteio.set_u32 out 4 n;
  Array.iteri
    (fun k (old_va, new_va, size) ->
      let off = 8 + (k * 24) in
      Byteio.set_addr out off old_va;
      Byteio.set_addr out (off + 8) new_va;
      Byteio.set_u32 out (off + 16) size;
      Byteio.set_u32 out (off + 20) 0)
    pairs;
  out

let setup_data_decode b =
  if Bytes.length b < 8 || Byteio.get_u32 b 0 <> setup_magic then
    invalid_arg "Boot_params.setup_data_decode: bad blob";
  let n = Byteio.get_u32 b 4 in
  if Bytes.length b < 8 + (n * 24) then
    invalid_arg "Boot_params.setup_data_decode: truncated blob";
  Array.init n (fun k ->
      let off = 8 + (k * 24) in
      (Byteio.get_addr b off, Byteio.get_addr b (off + 8), Byteio.get_u32 b (off + 16)))

let setup_data_read mem ~pa =
  let header = Imk_memory.Guest_mem.read_bytes mem ~pa ~len:8 in
  if Byteio.get_u32 header 0 <> setup_magic then
    invalid_arg "Boot_params.setup_data_read: bad blob";
  let n = Byteio.get_u32 header 4 in
  setup_data_decode (Imk_memory.Guest_mem.read_bytes mem ~pa ~len:(8 + (n * 24)))
