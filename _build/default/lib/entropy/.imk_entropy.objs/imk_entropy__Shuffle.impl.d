lib/entropy/shuffle.ml: Array Prng
