lib/entropy/prng.mli:
