lib/entropy/prng.ml: Float Int64
