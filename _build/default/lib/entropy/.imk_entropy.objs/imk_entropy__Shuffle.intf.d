lib/entropy/shuffle.mli: Prng
