lib/entropy/pool.ml: Prng
