lib/entropy/pool.mli: Prng
