(** Fisher–Yates shuffling and permutation helpers.

    FGKASLR's core operation is shuffling the list of function sections
    (paper §3.2); both the bootstrap loader and the monitor use this same
    primitive, mirroring how the paper's monitor implementation adapts the
    kernel's C [shuffle_sections]. *)

val shuffle_in_place : Prng.t -> 'a array -> unit
(** [shuffle_in_place rng a] permutes [a] uniformly at random. *)

val permutation : Prng.t -> int -> int array
(** [permutation rng n] is a uniformly random permutation of [0..n-1],
    represented as the array of images: element [i] holds where index [i]
    is sent. *)

val is_permutation : int array -> bool
(** [is_permutation a] checks that [a] contains each of [0..n-1] exactly
    once — the invariant property tests rely on. *)

val identity_fraction : int array -> float
(** [identity_fraction p] is the fraction of fixed points of [p]; a
    diagnostic used by the security analysis (a good shuffle of [n]
    sections leaves ~1 fixed point in expectation regardless of [n]). *)

val log2_factorial : int -> float
(** [log2_factorial n] is log2(n!), the entropy in bits of a uniform
    permutation of [n] items — the FGKASLR entropy bound reported by the
    security experiment. *)
