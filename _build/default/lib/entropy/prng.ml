type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: expands a single 64-bit seed into well-mixed state words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9e3779b97f4a7c15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(next_int64 t)

let next_int t bound =
  if bound <= 0 then invalid_arg "Prng.next_int: bound must be positive";
  (* Rejection sampling on the top 62 bits keeps the draw exactly uniform. *)
  let mask = 0x3fff_ffff_ffff_ffff in
  let limit = mask - (mask mod bound) in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let next_float t =
  (* 53 bits of mantissa from the top of the stream. *)
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992. (* 2^53 *)

let next_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.next_in_range: hi < lo";
  lo + next_int t (hi - lo + 1)

let next_aligned t ~lo ~hi ~align =
  if align <= 0 then invalid_arg "Prng.next_aligned: align must be positive";
  let first = (lo + align - 1) / align * align in
  if first > hi then invalid_arg "Prng.next_aligned: empty aligned range";
  let slots = ((hi - first) / align) + 1 in
  first + (next_int t slots * align)

let gaussian t ~mean ~stddev =
  let rec nonzero () =
    let u = next_float t in
    if u = 0. then nonzero () else u
  in
  let u1 = nonzero () and u2 = next_float t in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mean +. (stddev *. z)
