type source = Host_pool | Guest_rdrand

type t = { source : source; gen : Prng.t }

let create source ~seed = { source; gen = Prng.create ~seed }
let source t = t.source
let draw_u64 t = Prng.next_int64 t.gen
let prng t = t.gen

let draw_cost_ns t =
  match t.source with Host_pool -> 50 | Guest_rdrand -> 1_500
