let shuffle_in_place rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Prng.next_int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation rng n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place rng a;
  a

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then ok := false else seen.(x) <- true)
    a;
  !ok

let identity_fraction p =
  let n = Array.length p in
  if n = 0 then 0.
  else
    let fixed = ref 0 in
    Array.iteri (fun i x -> if i = x then incr fixed) p;
    float_of_int !fixed /. float_of_int n

let log2_factorial n =
  let acc = ref 0. in
  for k = 2 to n do
    acc := !acc +. (log (float_of_int k) /. log 2.)
  done;
  !acc
