(** Deterministic pseudo-random number generation.

    The monitor's randomization (paper §4.3) pulls randomness from the host
    entropy pool; for reproducible experiments every generator here is
    seeded explicitly. The implementation is Xoshiro256** seeded through
    SplitMix64, the de-facto standard pairing for fast non-cryptographic
    generation with full 64-bit state mixing. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator whose 256-bit state is derived from
    [seed] with SplitMix64, so nearby seeds still yield unrelated
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t]'s stream. Used to
    hand each simulated VM instance its own randomness without coupling
    experiment ordering to layout choices. *)

val next_int64 : t -> int64
(** [next_int64 t] is the next 64-bit output of Xoshiro256**. *)

val next_int : t -> int -> int
(** [next_int t bound] is a uniform integer in [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. Uses rejection sampling, so the
    distribution is exactly uniform. *)

val next_float : t -> float
(** [next_float t] is a uniform float in [0, 1). *)

val next_in_range : t -> lo:int -> hi:int -> int
(** [next_in_range t ~lo ~hi] is uniform in the inclusive range
    [lo, hi]. Raises [Invalid_argument] if [hi < lo]. *)

val next_aligned : t -> lo:int -> hi:int -> align:int -> int
(** [next_aligned t ~lo ~hi ~align] is a uniform multiple of [align] in
    [lo, hi]. This is the primitive behind KASLR offset selection: Linux
    picks a slot index first and multiplies by the alignment, which keeps
    every aligned offset equiprobable. Raises [Invalid_argument] when no
    aligned value fits or [align <= 0]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** [gaussian t ~mean ~stddev] draws from a normal distribution
    (Box–Muller). Used by the cost model to add measurement-like jitter. *)
