(** Entropy-source models.

    Paper §4.3: instead of the guest's "complex mix of entropy pools and
    hardware instructions like rdrand", the monitor pulls from the host's
    long-running entropy pool. Both sources produce the same quality of
    randomness in this simulation (a seeded {!Prng.t}); what differs is
    the *cost* of obtaining it and where it is available, which the boot
    paths charge to the virtual clock. *)

type source =
  | Host_pool  (** host /dev/urandom-style pool; cheap, always warm *)
  | Guest_rdrand
      (** in-guest rdrand/early entropy mixing; slower per draw, models the
          bootstrap loader's hardware-instruction path *)

type t

val create : source -> seed:int64 -> t
(** [create source ~seed] builds a pool of the given kind. *)

val source : t -> source
(** [source t] reports which model this pool uses. *)

val draw_u64 : t -> int64
(** [draw_u64 t] draws 64 bits of randomness. *)

val prng : t -> Prng.t
(** [prng t] exposes the underlying generator for bulk use (e.g. shuffling
    thousands of sections without paying a per-draw model cost). *)

val draw_cost_ns : t -> int
(** [draw_cost_ns t] is the modelled cost of one 64-bit draw: a host pool
    read is a memcpy out of a DRBG (~50 ns); a guest rdrand draw includes
    the instruction latency and retry loop (~1.5 us, in line with measured
    RDRAND throughput on Haswell-era parts like the paper's i7-4790). *)
