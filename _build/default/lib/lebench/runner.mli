(** LEBench execution against a booted guest.

    The runner extracts the live function layout from the booted guest's
    kallsyms table (triggering the deferred fixup if the monitor left it
    stale — reading kallsyms is precisely the access that forces it),
    then times each workload: [iterations] model iterations at the
    layout-dependent latency, with gaussian measurement noise. Results
    are normalized by the harness against a nokaslr baseline run, as in
    Figure 11. *)

type result = { workload : Workloads.t; mean_ns : float }

val layout_of_guest :
  Imk_vclock.Charge.t ->
  Imk_memory.Guest_mem.t ->
  Imk_guest.Boot_params.t ->
  int array
(** [layout_of_guest charge mem params] is the function-id → VA map read
    from the guest's kallsyms. Raises [Imk_guest.Kallsyms.Lookup_failed]
    if kallsyms is stale and unrepairable. *)

val run :
  ?iterations:int ->
  ?noise_seed:int64 ->
  fn_va:int array ->
  unit ->
  result list
(** [run ~fn_va ()] times the whole suite against the layout. Default
    10000 iterations (LEBench's default) and a fixed noise seed. *)

val normalize : baseline:result list -> result list -> (string * float) list
(** [normalize ~baseline results] is per-workload [mean / baseline_mean]
    — the normalized performance of Figure 11. Raises [Invalid_argument]
    if the suites do not match. *)
