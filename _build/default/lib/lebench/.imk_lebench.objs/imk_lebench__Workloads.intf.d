lib/lebench/workloads.mli:
