lib/lebench/workloads.ml: List
