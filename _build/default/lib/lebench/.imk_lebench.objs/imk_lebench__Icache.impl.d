lib/lebench/icache.ml: Array Hashtbl Imk_util Workloads
