lib/lebench/runner.ml: Array Icache Imk_entropy Imk_guest List Workloads
