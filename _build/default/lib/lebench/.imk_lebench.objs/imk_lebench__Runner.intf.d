lib/lebench/runner.mli: Imk_guest Imk_memory Imk_vclock Workloads
