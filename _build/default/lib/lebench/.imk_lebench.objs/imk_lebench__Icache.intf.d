lib/lebench/icache.mli: Workloads
