let page = 4096

let hot_set (w : Workloads.t) ~n_functions =
  let start = Imk_util.Crc.crc32_string w.name mod max 1 (n_functions - w.hot_fns) in
  Array.init (min w.hot_fns n_functions) (fun k -> start + k)

let pages_spanned ~fn_va ~hot =
  let pages = Hashtbl.create 64 in
  Array.iter (fun id -> Hashtbl.replace pages (fn_va.(id) / page) ()) hot;
  Hashtbl.length pages

let avg_hot_fn_bytes = 640

let packed_pages ~hot =
  (* ceiling plus one page of boundary slack: a co-located hot set may
     straddle one extra page without that indicating poor locality *)
  ((Array.length hot * avg_hot_fn_bytes) + page - 1) / page + 1

(* Penalty per extra page touched on the hot path, as a fraction of the
   icache-bound portion. Calibrated so a full shuffle of a microVM
   kernel yields ≈7% average slowdown across the suite (Figure 11). *)
let per_page_penalty = 0.008

let slowdown (w : Workloads.t) ~fn_va =
  let hot = hot_set w ~n_functions:(Array.length fn_va) in
  if Array.length hot = 0 then 1.0
  else begin
    let ideal = packed_pages ~hot in
    let actual = pages_spanned ~fn_va ~hot in
    let excess = float_of_int (max 0 (actual - ideal)) in
    1.0 +. (w.icache_sensitivity *. per_page_penalty *. excess)
  end
