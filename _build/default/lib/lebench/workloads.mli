(** LEBench workload definitions.

    LEBench (Ren et al., SOSP'19 — the paper's §5.4 benchmark) measures
    the kernel operations that dominate application performance:
    syscalls, context switches, forks, memory mapping, page faults and
    network send/recv. Each model here carries a baseline latency
    (Haswell-era figures) and two sensitivity parameters that determine
    how the randomized text layout affects it:

    - [hot_fns]: how many kernel functions the operation's hot path
      touches (longer paths sample more of the layout);
    - [icache_sensitivity]: how front-end-bound the operation is — the
      fraction of its time attributable to instruction fetch locality.

    FGKASLR's per-function shuffle separates functions that the linker
    had co-located, raising i-cache/iTLB misses on hot paths (the ~7%
    slowdown of Figure 11); plain KASLR preserves relative layout and
    stays within noise. *)

type t = {
  name : string;
  base_ns : float;  (** unrandomized per-iteration latency *)
  hot_fns : int;
  icache_sensitivity : float;  (** in [0, 1] *)
}

val all : t list
(** The LEBench suite in presentation order (getpid through huge mmap). *)

val find : string -> t option
