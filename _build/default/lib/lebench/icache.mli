(** Instruction-locality model.

    §5.4 attributes the FGKASLR-capable kernels' runtime cost to "a
    slightly higher percentage of L1 cache misses ... frequently used
    functions that are usually grouped together being separated". The
    model makes that mechanical: a workload's hot path is a set of
    functions the linker placed contiguously (consecutive ids in the
    synthetic kernel); the metric is how many 4 KiB i-cache/iTLB reach
    pages their entry points span in the {e actual booted layout}. A
    shuffled layout spans more pages, and the slowdown is proportional to
    the excess. Plain KASLR shifts all functions together, so the span —
    and thus the predicted slowdown — is unchanged, which is exactly the
    paper's finding. *)

val hot_set : Workloads.t -> n_functions:int -> int array
(** [hot_set w ~n_functions] is the deterministic set of function ids on
    [w]'s hot path: a contiguous id range seeded by the workload name. *)

val pages_spanned : fn_va:int array -> hot:int array -> int
(** [pages_spanned ~fn_va ~hot] counts distinct 4 KiB pages hit by the
    hot functions' entry points. *)

val packed_pages : hot:int array -> int
(** [packed_pages ~hot] is the page count of a perfectly co-located set
    of the same functions (average-size bodies packed contiguously) — the
    denominator of the locality penalty. *)

val slowdown : Workloads.t -> fn_va:int array -> float
(** [slowdown w ~fn_va] is the multiplicative latency factor (≥ 1.0) of
    running [w] against the layout [fn_va] (function id → VA). Calibrated
    so a full shuffle of a microVM kernel costs ≈7% on i-cache-bound
    tests and a layout-preserving shift costs 0%. *)
