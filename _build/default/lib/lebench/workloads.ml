type t = {
  name : string;
  base_ns : float;
  hot_fns : int;
  icache_sensitivity : float;
}

let all =
  [
    { name = "getpid"; base_ns = 180.; hot_fns = 4; icache_sensitivity = 0.55 };
    { name = "context-switch"; base_ns = 1_800.; hot_fns = 24; icache_sensitivity = 0.7 };
    { name = "small-read"; base_ns = 420.; hot_fns = 10; icache_sensitivity = 0.6 };
    { name = "small-write"; base_ns = 450.; hot_fns = 10; icache_sensitivity = 0.6 };
    { name = "big-read"; base_ns = 9_000.; hot_fns = 12; icache_sensitivity = 0.25 };
    { name = "big-write"; base_ns = 9_500.; hot_fns = 12; icache_sensitivity = 0.25 };
    { name = "mmap"; base_ns = 2_400.; hot_fns = 16; icache_sensitivity = 0.5 };
    { name = "big-mmap"; base_ns = 45_000.; hot_fns = 18; icache_sensitivity = 0.15 };
    { name = "munmap"; base_ns = 1_900.; hot_fns = 14; icache_sensitivity = 0.5 };
    { name = "page-fault"; base_ns = 2_900.; hot_fns = 20; icache_sensitivity = 0.55 };
    { name = "big-page-fault"; base_ns = 30_000.; hot_fns = 22; icache_sensitivity = 0.2 };
    { name = "fork"; base_ns = 60_000.; hot_fns = 60; icache_sensitivity = 0.45 };
    { name = "big-fork"; base_ns = 280_000.; hot_fns = 70; icache_sensitivity = 0.3 };
    { name = "thread-create"; base_ns = 14_000.; hot_fns = 40; icache_sensitivity = 0.5 };
    { name = "send"; base_ns = 3_200.; hot_fns = 26; icache_sensitivity = 0.65 };
    { name = "recv"; base_ns = 3_400.; hot_fns = 26; icache_sensitivity = 0.65 };
    { name = "select"; base_ns = 1_100.; hot_fns = 12; icache_sensitivity = 0.6 };
    { name = "epoll"; base_ns = 1_300.; hot_fns = 14; icache_sensitivity = 0.6 };
  ]

let find name = List.find_opt (fun t -> t.name = name) all
