type result = { workload : Workloads.t; mean_ns : float }

let layout_of_guest charge mem params =
  let n = params.Imk_guest.Boot_params.kernel.Imk_guest.Boot_params.n_functions in
  let state = Imk_guest.Kallsyms.create () in
  let fn_va = Array.make n 0 in
  for index = 0 to n - 1 do
    let addr, id =
      Imk_guest.Kallsyms.read_for_user state charge mem params ~privileged:true
        ~index
    in
    if id >= 0 && id < n then fn_va.(id) <- addr
  done;
  fn_va

let run ?(iterations = 10_000) ?(noise_seed = 7L) ~fn_va () =
  let rng = Imk_entropy.Prng.create ~seed:noise_seed in
  List.map
    (fun (w : Workloads.t) ->
      let factor = Icache.slowdown w ~fn_va in
      let per_iter = w.base_ns *. factor in
      (* per-run measurement noise, ~0.5% as on a quiet testbed *)
      let total = ref 0. in
      for _ = 1 to iterations do
        total :=
          !total
          +. Imk_entropy.Prng.gaussian rng ~mean:per_iter
               ~stddev:(per_iter *. 0.005)
      done;
      { workload = w; mean_ns = !total /. float_of_int iterations })
    Workloads.all

let normalize ~baseline results =
  if List.length baseline <> List.length results then
    invalid_arg "Lebench.normalize: suite mismatch";
  List.map2
    (fun b r ->
      if b.workload.Workloads.name <> r.workload.Workloads.name then
        invalid_arg "Lebench.normalize: workload order mismatch";
      (r.workload.Workloads.name, r.mean_ns /. b.mean_ns))
    baseline results
