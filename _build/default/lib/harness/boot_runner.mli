(** Repeated-boot measurement, following the paper's methodology (§5.1):
    warm the cache with five boots, then measure N boots, reporting the
    average with min/max. Cold-cache runs drop the caches before every
    measured boot instead. *)

type phase_stats = {
  in_monitor : Imk_util.Stats.summary;
  bootstrap : Imk_util.Stats.summary;
  decompression : Imk_util.Stats.summary;
  linux_boot : Imk_util.Stats.summary;
  total : Imk_util.Stats.summary;
}

val ms : Imk_util.Stats.summary -> float
(** Mean in milliseconds (summaries are collected in ns). *)

val boot_many :
  ?warmups:int ->
  ?cold:bool ->
  runs:int ->
  cache:Imk_storage.Page_cache.t ->
  make_vm:(seed:int64 -> Imk_monitor.Vm_config.t) ->
  unit ->
  phase_stats
(** [boot_many ~runs ~cache ~make_vm ()] performs [warmups] (default 5)
    unrecorded boots, then [runs] recorded ones, each with a fresh seed
    and jittered costs. [cold] (default false) drops the page cache
    before every boot, including warmups (which then serve only to
    surface errors early). Raises whatever the boot raises — a failing
    configuration should fail the experiment. *)

val boot_once :
  ?jitter:bool ->
  seed:int64 ->
  cache:Imk_storage.Page_cache.t ->
  Imk_monitor.Vm_config.t ->
  Imk_vclock.Trace.t * Imk_monitor.Vmm.boot_result
(** One instrumented boot, returning the full trace (for span-level
    analyses like Figure 5) and the result (for layout-dependent
    analyses like LEBench and the attack simulation). *)

val spans_by_label : Imk_vclock.Trace.t -> (string * int) list
(** Aggregate span durations by label, for breakdowns finer than the
    four phases. *)
