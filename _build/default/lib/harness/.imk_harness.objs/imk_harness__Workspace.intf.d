lib/harness/workspace.mli: Imk_kernel Imk_storage
