lib/harness/experiments.mli: Imk_util Workspace
