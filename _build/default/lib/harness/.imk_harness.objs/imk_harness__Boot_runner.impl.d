lib/harness/boot_runner.ml: Charge Clock Cost_model Hashtbl Imk_entropy Imk_monitor Imk_storage Imk_util Imk_vclock Int64 List Option String Trace
