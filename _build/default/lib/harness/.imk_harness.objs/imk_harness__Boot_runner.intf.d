lib/harness/boot_runner.mli: Imk_monitor Imk_storage Imk_util Imk_vclock
