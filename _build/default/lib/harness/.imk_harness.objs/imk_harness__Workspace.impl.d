lib/harness/workspace.ml: Bzimage Config Hashtbl Image Imk_kernel Imk_storage List Printf
