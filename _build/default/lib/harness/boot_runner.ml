open Imk_vclock

type phase_stats = {
  in_monitor : Imk_util.Stats.summary;
  bootstrap : Imk_util.Stats.summary;
  decompression : Imk_util.Stats.summary;
  linux_boot : Imk_util.Stats.summary;
  total : Imk_util.Stats.summary;
}

let ms s = Imk_util.Units.ns_to_ms (int_of_float s.Imk_util.Stats.mean)

let boot_once ?(jitter = true) ~seed ~cache vm =
  let clock = Clock.create () in
  let trace = Trace.create clock in
  let jitter_rng =
    if jitter then Some (Imk_entropy.Prng.create ~seed:(Int64.add seed 7919L))
    else None
  in
  let ch = Charge.create ?jitter:jitter_rng trace Cost_model.default in
  let result = Imk_monitor.Vmm.boot ch cache { vm with Imk_monitor.Vm_config.seed } in
  (trace, result)

let boot_many ?(warmups = 5) ?(cold = false) ~runs ~cache ~make_vm () =
  let phase_samples = Hashtbl.create 8 in
  let totals = ref [] in
  let record phase v =
    let prev = Option.value ~default:[] (Hashtbl.find_opt phase_samples phase) in
    Hashtbl.replace phase_samples phase (v :: prev)
  in
  let one ~seed ~recorded =
    if cold then Imk_storage.Page_cache.drop_caches cache;
    let trace, _result = boot_once ~seed ~cache (make_vm ~seed) in
    if recorded then begin
      List.iter
        (fun (phase, ns) -> record phase (float_of_int ns))
        (Trace.breakdown trace);
      totals := float_of_int (Trace.total trace) :: !totals
    end
  in
  for i = 1 to warmups do
    one ~seed:(Int64.of_int (1000 + i)) ~recorded:false
  done;
  for i = 1 to runs do
    one ~seed:(Int64.of_int (2000 + i)) ~recorded:true
  done;
  let summary phase =
    Imk_util.Stats.summarize
      (Option.value ~default:[ 0. ] (Hashtbl.find_opt phase_samples phase))
  in
  {
    in_monitor = summary Trace.In_monitor;
    bootstrap = summary Trace.Bootstrap_setup;
    decompression = summary Trace.Decompression;
    linux_boot = summary Trace.Linux_boot;
    total = Imk_util.Stats.summarize !totals;
  }

let spans_by_label trace =
  let acc = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace.span) ->
      let label =
        if String.length s.label > 0 && s.label.[0] = '+' then
          String.sub s.label 1 (String.length s.label - 1)
        else s.label
      in
      let prev = Option.value ~default:0 (Hashtbl.find_opt acc label) in
      Hashtbl.replace acc label (prev + (s.stop_ns - s.start_ns)))
    (Trace.spans trace);
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
