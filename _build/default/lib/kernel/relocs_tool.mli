(** The [relocs] tool: regenerate a relocation table from a vmlinux.

    Paper §4.3: "the relocs tool in the Linux source tree can take a
    vmlinux.bin as input and generate its respective vmlinux.relocs file".
    This is the equivalent for synthetic kernels — it parses the ELF,
    walks the self-describing function encodings in the text section(s),
    and rebuilds the same table {!Image.build} emitted, without access to
    the build-time graph. Exposed as the [relocs] CLI in [bin/]. *)

exception Unsupported of string
(** Raised when the image lacks the structures this tool needs (e.g. not
    one of our synthetic kernels). *)

val extract : bytes -> Imk_elf.Relocation.table
(** [extract vmlinux] regenerates the relocation table: text call sites,
    the .rodata pointer table and the .kallsyms base. *)

val walk_functions :
  Imk_elf.Types.t -> f:(section_va:int -> fn_off:int -> id:int -> size:int -> n_sites:int -> data:bytes -> unit) -> unit
(** [walk_functions elf ~f] visits each encoded function: its containing
    section's VA, its byte offset within that section's data, and its
    decoded header. Shared with the FGKASLR randomizer and the guest
    integrity checks. Raises {!Unsupported} on a malformed function
    header (bad magic or a size that escapes the section). *)
