(** Synthetic kernel call graph.

    The ground truth behind a synthetic kernel image: a set of functions,
    each with a deterministic size and a list of call sites referencing
    other functions through one of the three relocation kinds of §3.2.
    The graph is strongly connected by construction (function [i] always
    calls [(i+1) mod n]), so a breadth-first walk from the entry function
    visits every function — which is what lets the guest runtime verify
    {e every} relocation site after randomization. *)

type site = { target : int; kind : Imk_elf.Relocation.kind }

type fn = {
  id : int;
  body_bytes : int;  (** filler bytes after the header and sites *)
  sites : site array;
}

type extab_entry = {
  fault_fn : int;
  fault_off : int;  (** offset of the faulting IP inside [fault_fn] *)
  handler_fn : int;
}

type t = {
  fns : fn array;
  rodata_targets : int array;  (** function ids in the .rodata pointer table *)
  extab : extab_entry array;
}

val generate : Config.t -> t
(** [generate config] builds the graph deterministically from
    [config.seed]. Site kinds are distributed roughly as in a real
    vmlinux.relocs: most 32-bit absolute, some 64-bit, a few inverse. *)

val fn_header_bytes : int
(** Bytes of the per-function header (magic + id + site count + encoded
    size). *)

val site_bytes : int
(** Bytes per call-site record. *)

val fn_size : fn -> int
(** [fn_size f] is the total encoded size of the function, 16-aligned. *)

val fn_magic : int -> int
(** [fn_magic id] is the 64-bit magic value at the start of function [id]
    — how the guest runtime recognizes that a pointer landed on the right
    function. Always odd, never zero. *)

val total_text_bytes : t -> int
(** Sum of all function sizes (the .text payload before alignment). *)
