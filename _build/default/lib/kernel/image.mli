(** Synthetic vmlinux builder.

    Produces a real ELF64 kernel image from a {!Function_graph.t}. The
    image is self-describing: every structure that randomization must
    patch can be re-discovered and verified from the bytes alone, which is
    what makes mis-relocation detectable (the guest runtime "crashes" on a
    bad pointer just as a real kernel would).

    {2 Binary encodings}

    {b Function} (inside [.text] or its own [.text.fn_<id>] section):
    {v
    off  0  u64  magic        = Function_graph.fn_magic id
    off  8  u32  id
    off 12  u32  n_sites
    off 16  u32  encoded size (16-aligned)
    off 20  u32  pad
    off 24  site records, 16 bytes each:
            u8   kind (0 = abs64, 1 = abs32, 2 = inv32)
            u8*3 pad
            u32  target function id
            u64  value field  <- the relocation site (last 8 bytes)
                 abs64: full target VA
                 abs32: low 32 bits of target VA (high half zero)
                 inv32: low 32 bits of (Addr.inverse_base - target VA)
    then body filler, total size 16-aligned
    v}

    {b .rodata} function-pointer table (ops-struct stand-in):
    [u32 count, u32 pad], then per entry (16 bytes):
    [u64 target VA] (abs64 site), [u32 target id], [u32 pad].

    {b .kallsyms}: [u64 base VA] (abs64 site), [u32 count, u32 pad], then
    per symbol (8 bytes): [u32 offset-from-base, u32 id], sorted by
    offset. Mirrors Linux's relative kallsyms: plain KASLR only relocates
    the base; FGKASLR must rewrite and re-sort the offsets (§4.3).

    {b .extab} exception table: [u32 count, u32 pad], then per entry
    (24 bytes): [i32 fault_disp] (fault VA relative to the entry's own
    address), [i32 handler_disp] (handler VA relative to entry address +
    4), [u32 fault fn id], [u32 handler fn id], [u32 fault offset in fn],
    [u32 pad]; sorted by fault VA. Being self-relative, the table needs no
    KASLR relocs but goes stale under FGKASLR — exactly the Linux
    situation described in §3.2.

    {b .orc_unwind} (only with CONFIG_UNWINDER_ORC): [u32 count, u32 pad]
    then per entry (8 bytes): [i32 ip_disp] (IP relative to entry
    address), [u32 fn id]; sorted by IP. *)

type built = {
  config : Config.t;
  graph : Function_graph.t;
  elf : Imk_elf.Types.t;
  vmlinux : bytes;  (** the serialized ELF image *)
  relocs : Imk_elf.Relocation.table;
      (** empty when the config is not relocatable *)
  relocs_bytes : bytes;  (** {!Imk_elf.Relocation.encode} of [relocs] *)
  fn_va : int array;  (** link-time VA of each function *)
}

val build : Config.t -> built
(** [build config] generates the graph and assembles the image. Costs
    nothing on the virtual clock: kernel builds happen offline, not at
    boot. *)

val modeled_vmlinux_bytes : built -> int
(** actual ELF size × scale — the Table 1 "vmlinux size" figure. *)

val modeled_reloc_bytes : built -> int
val modeled_reloc_entries : built -> int
val modeled_sections : built -> int
(** actual section count × scale: the section-header parsing work a
    full-size kernel of this configuration would present. *)

(** {2 Encoding constants} (shared with the randomizer, the guest runtime
    and the relocs tool) *)

val site_kind_code : Imk_elf.Relocation.kind -> int
val site_kind_of_code : int -> Imk_elf.Relocation.kind
val rodata_header_bytes : int
val rodata_entry_bytes : int
val kallsyms_header_bytes : int
val kallsyms_entry_bytes : int
val extab_header_bytes : int
val extab_entry_bytes : int
val orc_header_bytes : int
val orc_entry_bytes : int
