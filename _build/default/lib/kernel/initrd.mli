(** Initial ramdisk images.

    The bootloader (or direct-booting monitor) loads the initrd alongside
    the kernel and advertises it through the boot info; the kernel mounts
    it as the first filesystem. Synthetic initrds carry a checksummed
    header so a guest can detect a mis-placed or clobbered image — the
    moral equivalent of a cpio magic check plus content integrity. *)

exception Corrupt of string

val make : size:int -> seed:int64 -> bytes
(** [make ~size ~seed] builds an initrd of exactly [size] bytes
    (minimum 16: magic, body length, body CRC). The body is
    semi-compressible filler like a real compressed cpio archive. *)

val validate : bytes -> unit
(** [validate b] raises {!Corrupt} on bad magic, truncation or a CRC
    mismatch. *)

val validate_in_guest : Imk_memory.Guest_mem.t -> pa:int -> len:int -> unit
(** [validate_in_guest mem ~pa ~len] validates an image as loaded in
    guest memory — what the kernel does before unpacking it. *)
