type site = { target : int; kind : Imk_elf.Relocation.kind }

type fn = { id : int; body_bytes : int; sites : site array }

type extab_entry = { fault_fn : int; fault_off : int; handler_fn : int }

type t = {
  fns : fn array;
  rodata_targets : int array;
  extab : extab_entry array;
}

let fn_header_bytes = 24
let site_bytes = 16

let fn_size f =
  Imk_memory.Addr.align_up
    (fn_header_bytes + (Array.length f.sites * site_bytes) + f.body_bytes)
    16

let fn_magic id =
  (* splitmix-style mix of the id; force odd and nonzero so a magic can
     never be mistaken for padding *)
  let z = Int64.of_int (id + 0x1234567) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  let v = Int64.to_int (Int64.shift_right_logical z 2) in
  v lor 1

let pick_kind rng =
  (* roughly vmlinux.relocs proportions: mostly 32-bit absolute *)
  let r = Imk_entropy.Prng.next_int rng 100 in
  if r < 70 then Imk_elf.Relocation.Abs32
  else if r < 94 then Imk_elf.Relocation.Abs64
  else Imk_elf.Relocation.Inv32

let generate (config : Config.t) =
  let rng = Imk_entropy.Prng.create ~seed:config.seed in
  let n = config.functions in
  if n < 2 then invalid_arg "Function_graph.generate: need at least 2 functions";
  let fns =
    Array.init n (fun id ->
        let extra_sites =
          Imk_entropy.Prng.next_int rng (max 1 ((config.avg_call_sites - 1) * 2 + 1))
        in
        (* the ring edge keeps the graph strongly connected *)
        let ring = { target = (id + 1) mod n; kind = pick_kind rng } in
        let others =
          Array.init extra_sites (fun _ ->
              { target = Imk_entropy.Prng.next_int rng n; kind = pick_kind rng })
        in
        let body_bytes =
          let avg = config.avg_fn_body in
          max 0 (avg / 2 + Imk_entropy.Prng.next_int rng (max 1 avg))
        in
        { id; body_bytes; sites = Array.append [| ring |] others })
  in
  let rodata_targets =
    Array.init config.rodata_ptrs (fun _ -> Imk_entropy.Prng.next_int rng n)
  in
  let extab =
    Array.init config.extab_entries (fun _ ->
        let fault_fn = Imk_entropy.Prng.next_int rng n in
        let f = fns.(fault_fn) in
        let span = fn_size f in
        (* fault IP inside the function, past the header *)
        let fault_off =
          fn_header_bytes + Imk_entropy.Prng.next_int rng (max 1 (span - fn_header_bytes))
        in
        { fault_fn; fault_off; handler_fn = Imk_entropy.Prng.next_int rng n })
  in
  { fns; rodata_targets; extab }

let total_text_bytes t = Array.fold_left (fun acc f -> acc + fn_size f) 0 t.fns
