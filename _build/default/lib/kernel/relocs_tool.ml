open Imk_util

exception Unsupported of string

let fail msg = raise (Unsupported msg)

let walk_functions (elf : Imk_elf.Types.t) ~f =
  let visit_section (s : Imk_elf.Types.section) =
    let data = s.data in
    let n = Bytes.length data in
    let rec go off =
      if off + Function_graph.fn_header_bytes <= n then begin
        let magic = Byteio.get_addr data off in
        let id = Byteio.get_u32 data (off + 8) in
        let n_sites = Byteio.get_u32 data (off + 12) in
        let size = Byteio.get_u32 data (off + 16) in
        if magic <> Function_graph.fn_magic id then
          fail (Printf.sprintf "bad function magic in %s at offset %#x" s.name off);
        if size <= 0 || off + size > n then
          fail (Printf.sprintf "function size escapes section %s" s.name);
        f ~section_va:s.addr ~fn_off:off ~id ~size ~n_sites ~data;
        go (off + size)
      end
      else if off <> n then fail ("trailing bytes in text section " ^ s.name)
    in
    go 0
  in
  let texts =
    Array.to_list elf.sections
    |> List.filter (fun (s : Imk_elf.Types.section) ->
           s.name = ".text" || Imk_elf.Types.is_function_section s)
  in
  if texts = [] then fail "no text sections";
  List.iter visit_section texts

let extract vmlinux =
  let elf =
    try Imk_elf.Parser.parse vmlinux
    with Imk_elf.Parser.Malformed m -> fail ("not a valid ELF: " ^ m)
  in
  let abs64 = ref [] and abs32 = ref [] and inv32 = ref [] in
  let note kind va =
    match kind with
    | Imk_elf.Relocation.Abs64 -> abs64 := va :: !abs64
    | Imk_elf.Relocation.Abs32 -> abs32 := va :: !abs32
    | Imk_elf.Relocation.Inv32 -> inv32 := va :: !inv32
  in
  walk_functions elf ~f:(fun ~section_va ~fn_off ~id:_ ~size:_ ~n_sites ~data ->
      for k = 0 to n_sites - 1 do
        let sbase =
          fn_off + Function_graph.fn_header_bytes + (k * Function_graph.site_bytes)
        in
        let kind = Image.site_kind_of_code (Byteio.get_u8 data sbase) in
        note kind (section_va + sbase + 8)
      done);
  (match Imk_elf.Types.section_by_name elf ".rodata" with
  | None -> fail "no .rodata section"
  | Some s ->
      let count = Byteio.get_u32 s.data 0 in
      for k = 0 to count - 1 do
        note Imk_elf.Relocation.Abs64
          (s.addr + Image.rodata_header_bytes + (k * Image.rodata_entry_bytes))
      done);
  (match Imk_elf.Types.section_by_name elf ".kallsyms" with
  | None -> fail "no .kallsyms section"
  | Some s -> note Imk_elf.Relocation.Abs64 s.addr);
  let sorted l = Array.of_list (List.sort_uniq compare l) in
  { Imk_elf.Relocation.abs64 = sorted !abs64; abs32 = sorted !abs32; inv32 = sorted !inv32 }
