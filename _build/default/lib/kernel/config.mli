(** Kernel build configurations.

    Mirrors the paper's kernel matrix (Table 1): three presets — Lupine
    (small single-purpose), AWS (the Firecracker reference microVM
    kernel) and Ubuntu (a full distribution kernel) — each in three
    variants: [nokaslr] (not even relocatable), [kaslr]
    (CONFIG_RANDOMIZE_BASE) and [fgkaslr] (built with -ffunction-sections
    from the patched tree; carries per-function sections and their extra
    parsing cost even when randomization is disabled on the command line,
    as the paper notes in §5.1).

    Synthetic images are built at a reduced [scale]: an image models a
    kernel [scale] times its actual byte size. Cost accounting multiplies
    actual counts back up, so virtual boot times reflect the paper's
    20–45 MB kernels while buffers stay small (DESIGN.md §4.3). *)

type preset = Lupine | Aws | Ubuntu
type variant = Nokaslr | Kaslr | Fgkaslr

val preset_name : preset -> string
val variant_name : variant -> string
val all_presets : preset list
val all_variants : variant list

type t = {
  name : string;  (** e.g. "aws-kaslr" *)
  preset : preset;
  variant : variant;
  relocatable : bool;  (** CONFIG_RELOCATABLE: emit relocation info *)
  fg_sections : bool;  (** -ffunction-sections: one section per function *)
  unwinder_orc : bool;  (** CONFIG_UNWINDER_ORC: carry an ORC table *)
  scale : int;  (** modelled bytes = actual bytes × scale *)
  functions : int;  (** actual function count in the synthetic image *)
  avg_fn_body : int;  (** mean filler bytes per function body *)
  avg_call_sites : int;  (** mean relocation sites per function *)
  rodata_ptrs : int;  (** function-pointer table entries in .rodata *)
  data_bytes : int;
  bss_bytes : int;
  extab_entries : int;
  orc_per_fn : int;  (** ORC entries per function when [unwinder_orc] *)
  linux_boot_ms : float;
      (** modelled Linux Boot time (entry to init) at the 256 MiB baseline *)
  memmap_ms_per_gib : float;
      (** additional Linux Boot time per GiB of guest memory (struct-page
          initialisation), the linear term in Figure 10 *)
  seed : int64;  (** build determinism: content + graph shape *)
}

val make : ?scale:int -> ?seed:int64 -> preset -> variant -> t
(** [make preset variant] instantiates a configuration. Default [scale] is
    16, default [seed] derives from the name. *)

val all : ?scale:int -> unit -> t list
(** [all ()] is the full 3×3 kernel matrix of Table 1. *)

val modeled_of_actual : t -> int -> int
(** [modeled_of_actual t n] is [n * t.scale] — the size/count fed to the
    cost model. *)
