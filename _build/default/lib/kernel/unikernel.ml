let config ?seed ~aslr () =
  let name = if aslr then "unikernel-aslr" else "unikernel-noaslr" in
  let base =
    Config.make ~scale:1
      ?seed:(Some (Option.value seed ~default:(Int64.of_int (Imk_util.Crc.crc32_string name))))
      Config.Lupine
      (if aslr then Config.Fgkaslr else Config.Nokaslr)
  in
  {
    base with
    Config.name;
    functions = 320;
    avg_fn_body = 420;
    avg_call_sites = 3;
    rodata_ptrs = 120;
    data_bytes = 48 * 1024;
    bss_bytes = 96 * 1024;
    extab_entries = 16;
    (* no init system, no drivers to probe: entry to main in ~1.2 ms *)
    linux_boot_ms = 1.2;
    memmap_ms_per_gib = 2.;
  }

let build ?seed ~aslr () = Image.build (config ?seed ~aslr ())
