open Imk_util

exception Corrupt of string

let superblock_bytes = 4096
let magic = 0x52544653 (* "RTFS" *)

let make ~size ~seed =
  if size < superblock_bytes then invalid_arg "Rootfs.make: size too small";
  let out = Bytes.create size in
  let rng = Imk_entropy.Prng.create ~seed in
  for i = 16 to size - 1 do
    let c =
      if i land 31 < 24 then Char.chr ((i * 13) land 0xff)
      else Char.chr (Imk_entropy.Prng.next_int rng 256)
    in
    Bytes.set out i c
  done;
  Byteio.set_u32 out 0 magic;
  Byteio.set_u32 out 4 size;
  Byteio.set_u32 out 8 (Crc.crc32 out 16 (superblock_bytes - 16));
  Byteio.set_u32 out 12 0;
  out

let mount_check sb =
  if Bytes.length sb < superblock_bytes then
    raise (Corrupt "rootfs: short superblock read");
  if Byteio.get_u32 sb 0 <> magic then raise (Corrupt "rootfs: bad magic");
  let crc = Byteio.get_u32 sb 8 in
  if Crc.crc32 sb 16 (superblock_bytes - 16) <> crc then
    raise (Corrupt "rootfs: superblock CRC mismatch")
