(** Root filesystem images for the virtio-blk device.

    A minimal superblock-checked filesystem stand-in: magic, size, and a
    CRC over the superblock region, so the guest's mount can detect a
    corrupt or truncated image without reading the whole disk (block
    devices are lazy). The body is semi-compressible filler standing in
    for an ext4 tree with a libc and an init binary. *)

exception Corrupt of string

val superblock_bytes : int
(** The region {!mount_check} reads and checksums (4 KiB). *)

val make : size:int -> seed:int64 -> bytes
(** [make ~size ~seed] builds an image of exactly [size] bytes
    (minimum one superblock). *)

val mount_check : bytes -> unit
(** [mount_check superblock] validates the superblock region; raises
    {!Corrupt}. *)
