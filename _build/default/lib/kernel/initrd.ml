open Imk_util

exception Corrupt of string

let magic = 0x494e5244 (* "INRD" *)
let header_bytes = 16

let make ~size ~seed =
  if size < header_bytes then invalid_arg "Initrd.make: size too small";
  let body_len = size - header_bytes in
  let out = Bytes.create size in
  let rng = Imk_entropy.Prng.create ~seed in
  for i = 0 to body_len - 1 do
    let c =
      if i land 15 < 12 then Char.chr ((i * 7) land 0xff)
      else Char.chr (Imk_entropy.Prng.next_int rng 256)
    in
    Bytes.set out (header_bytes + i) c
  done;
  Byteio.set_u32 out 0 magic;
  Byteio.set_u32 out 4 body_len;
  Byteio.set_u32 out 8 (Crc.crc32 out header_bytes body_len);
  Byteio.set_u32 out 12 0;
  out

let validate b =
  if Bytes.length b < header_bytes then raise (Corrupt "initrd: truncated header");
  if Byteio.get_u32 b 0 <> magic then raise (Corrupt "initrd: bad magic");
  let body_len = Byteio.get_u32 b 4 in
  if header_bytes + body_len > Bytes.length b then
    raise (Corrupt "initrd: truncated body");
  let crc = Byteio.get_u32 b 8 in
  if Crc.crc32 b header_bytes body_len <> crc then
    raise (Corrupt "initrd: body CRC mismatch")

let validate_in_guest mem ~pa ~len =
  match Imk_memory.Guest_mem.read_bytes mem ~pa ~len with
  | exception Imk_memory.Guest_mem.Fault m ->
      raise (Corrupt ("initrd: unreadable in guest memory: " ^ m))
  | b -> validate b
