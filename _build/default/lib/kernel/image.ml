open Imk_util

type built = {
  config : Config.t;
  graph : Function_graph.t;
  elf : Imk_elf.Types.t;
  vmlinux : bytes;
  relocs : Imk_elf.Relocation.table;
  relocs_bytes : bytes;
  fn_va : int array;
}

let site_kind_code = function
  | Imk_elf.Relocation.Abs64 -> 0
  | Imk_elf.Relocation.Abs32 -> 1
  | Imk_elf.Relocation.Inv32 -> 2

let site_kind_of_code = function
  | 0 -> Imk_elf.Relocation.Abs64
  | 1 -> Imk_elf.Relocation.Abs32
  | 2 -> Imk_elf.Relocation.Inv32
  | c -> invalid_arg (Printf.sprintf "Image: bad site kind code %d" c)

let rodata_header_bytes = 8
let rodata_entry_bytes = 16
let kallsyms_header_bytes = 16
let kallsyms_entry_bytes = 8
let extab_header_bytes = 8
let extab_entry_bytes = 24
let orc_header_bytes = 8
let orc_entry_bytes = 8

(* deterministic, semi-compressible body filler: a 16-byte motif derived
   from the function id, with every fourth row perturbed *)
let fill_body bytes off len id rng =
  let magic = Function_graph.fn_magic id in
  let motif = Bytes.create 16 in
  for j = 0 to 15 do
    Bytes.set motif j (Char.chr ((magic lsr (j * 3)) land 0xff))
  done;
  for j = 0 to len - 1 do
    let c =
      if j / 16 mod 4 = 3 then Char.chr (Imk_entropy.Prng.next_int rng 256)
      else Bytes.get motif (j mod 16)
    in
    Bytes.set bytes (off + j) c
  done

let encode_fn buf off (f : Function_graph.fn) ~fn_va rng =
  let magic = Function_graph.fn_magic f.id in
  Byteio.set_addr buf off magic;
  Byteio.set_u32 buf (off + 8) f.id;
  Byteio.set_u32 buf (off + 12) (Array.length f.sites);
  Byteio.set_u32 buf (off + 16) (Function_graph.fn_size f);
  Byteio.set_u32 buf (off + 20) 0;
  Array.iteri
    (fun k (site : Function_graph.site) ->
      let sbase = off + Function_graph.fn_header_bytes + (k * Function_graph.site_bytes) in
      Byteio.set_u8 buf sbase (site_kind_code site.kind);
      Byteio.set_u8 buf (sbase + 1) 0;
      Byteio.set_u16 buf (sbase + 2) 0;
      Byteio.set_u32 buf (sbase + 4) site.target;
      let target_va = fn_va.(site.target) in
      let value =
        match site.kind with
        | Imk_elf.Relocation.Abs64 -> target_va
        | Imk_elf.Relocation.Abs32 -> Imk_memory.Addr.low32 target_va
        | Imk_elf.Relocation.Inv32 ->
            Imk_memory.Addr.low32 (Imk_memory.Addr.inverse_base - target_va)
      in
      Byteio.set_addr buf (sbase + 8) value)
    f.sites;
  let body_off =
    off + Function_graph.fn_header_bytes
    + (Array.length f.sites * Function_graph.site_bytes)
  in
  let body_len = off + Function_graph.fn_size f - body_off in
  fill_body buf body_off body_len f.id rng

let build (config : Config.t) =
  let graph = Function_graph.generate config in
  let rng = Imk_entropy.Prng.create ~seed:(Int64.add config.seed 17L) in
  let n = Array.length graph.fns in
  (* assign link-time VAs *)
  let fn_va = Array.make n 0 in
  let text_base = Imk_memory.Addr.link_base in
  let va = ref text_base in
  Array.iteri
    (fun i f ->
      fn_va.(i) <- !va;
      va := !va + Function_graph.fn_size f)
    graph.fns;
  let text_end = !va in
  let builder = Imk_elf.Builder.create () in
  let reloc_abs64 = ref [] and reloc_abs32 = ref [] and reloc_inv32 = ref [] in
  let note_site kind site_va =
    match kind with
    | Imk_elf.Relocation.Abs64 -> reloc_abs64 := site_va :: !reloc_abs64
    | Imk_elf.Relocation.Abs32 -> reloc_abs32 := site_va :: !reloc_abs32
    | Imk_elf.Relocation.Inv32 -> reloc_inv32 := site_va :: !reloc_inv32
  in
  (* text: either one .text or one section per function *)
  if config.fg_sections then
    Array.iteri
      (fun i (f : Function_graph.fn) ->
        let size = Function_graph.fn_size f in
        let data = Bytes.create size in
        encode_fn data 0 f ~fn_va rng;
        Imk_elf.Builder.add_section builder
          ~name:(Printf.sprintf ".text.fn_%05d" i)
          ~sh_type:Imk_elf.Types.sht_progbits
          ~flags:(Imk_elf.Types.shf_alloc lor Imk_elf.Types.shf_execinstr)
          ~addr:fn_va.(i) ~addralign:16 data)
      graph.fns
  else begin
    let data = Bytes.create (text_end - text_base) in
    Array.iteri
      (fun i f -> encode_fn data (fn_va.(i) - text_base) f ~fn_va rng)
      graph.fns;
    Imk_elf.Builder.add_section builder ~name:".text"
      ~sh_type:Imk_elf.Types.sht_progbits
      ~flags:(Imk_elf.Types.shf_alloc lor Imk_elf.Types.shf_execinstr)
      ~addr:text_base ~addralign:4096 data
  end;
  (* record text site relocations *)
  Array.iteri
    (fun i (f : Function_graph.fn) ->
      Array.iteri
        (fun k (site : Function_graph.site) ->
          let site_va =
            fn_va.(i) + Function_graph.fn_header_bytes
            + (k * Function_graph.site_bytes) + 8
          in
          note_site site.kind site_va)
        f.sites)
    graph.fns;
  (* .rodata: function-pointer table *)
  let rodata_va = Imk_memory.Addr.align_up text_end 4096 in
  let nptrs = Array.length graph.rodata_targets in
  let rodata = Bytes.create (rodata_header_bytes + (nptrs * rodata_entry_bytes)) in
  Byteio.set_u32 rodata 0 nptrs;
  Byteio.set_u32 rodata 4 0;
  Array.iteri
    (fun k target ->
      let off = rodata_header_bytes + (k * rodata_entry_bytes) in
      Byteio.set_addr rodata off fn_va.(target);
      Byteio.set_u32 rodata (off + 8) target;
      Byteio.set_u32 rodata (off + 12) 0;
      note_site Imk_elf.Relocation.Abs64 (rodata_va + off))
    graph.rodata_targets;
  Imk_elf.Builder.add_section builder ~name:".rodata"
    ~sh_type:Imk_elf.Types.sht_progbits ~flags:Imk_elf.Types.shf_alloc
    ~addr:rodata_va ~addralign:4096 rodata;
  (* .kallsyms: base + sorted (offset, id) *)
  let kallsyms_va = rodata_va + Bytes.length rodata in
  let kallsyms_va = Imk_memory.Addr.align_up kallsyms_va 64 in
  let kallsyms =
    Bytes.create (kallsyms_header_bytes + (n * kallsyms_entry_bytes))
  in
  (* base is the kmap base — a pure address outside every function
     section, so FGKASLR's displacement leaves it alone and only the
     global delta (applied via its relocation) moves it *)
  Byteio.set_addr kallsyms 0 Imk_memory.Addr.kmap_base;
  Byteio.set_u32 kallsyms 8 n;
  Byteio.set_u32 kallsyms 12 0;
  let by_offset = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare fn_va.(a) fn_va.(b)) by_offset;
  Array.iteri
    (fun k i ->
      let off = kallsyms_header_bytes + (k * kallsyms_entry_bytes) in
      Byteio.set_u32 kallsyms off (fn_va.(i) - Imk_memory.Addr.kmap_base);
      Byteio.set_u32 kallsyms (off + 4) i)
    by_offset;
  note_site Imk_elf.Relocation.Abs64 kallsyms_va;
  Imk_elf.Builder.add_section builder ~name:".kallsyms"
    ~sh_type:Imk_elf.Types.sht_progbits ~flags:Imk_elf.Types.shf_alloc
    ~addr:kallsyms_va ~addralign:64 kallsyms;
  (* .extab: self-relative, sorted by fault VA *)
  let extab_va =
    Imk_memory.Addr.align_up (kallsyms_va + Bytes.length kallsyms) 64
  in
  let extab_entries = Array.copy graph.extab in
  Array.sort
    (fun (a : Function_graph.extab_entry) b ->
      compare (fn_va.(a.fault_fn) + a.fault_off) (fn_va.(b.fault_fn) + b.fault_off))
    extab_entries;
  let nex = Array.length extab_entries in
  let extab = Bytes.create (extab_header_bytes + (nex * extab_entry_bytes)) in
  Byteio.set_u32 extab 0 nex;
  Byteio.set_u32 extab 4 0;
  Array.iteri
    (fun k (e : Function_graph.extab_entry) ->
      let off = extab_header_bytes + (k * extab_entry_bytes) in
      let entry_va = extab_va + off in
      let fault_va = fn_va.(e.fault_fn) + e.fault_off in
      let handler_va = fn_va.(e.handler_fn) in
      Byteio.set_u32 extab off ((fault_va - entry_va) land 0xffffffff);
      Byteio.set_u32 extab (off + 4) ((handler_va - (entry_va + 4)) land 0xffffffff);
      Byteio.set_u32 extab (off + 8) e.fault_fn;
      Byteio.set_u32 extab (off + 12) e.handler_fn;
      Byteio.set_u32 extab (off + 16) e.fault_off;
      Byteio.set_u32 extab (off + 20) 0)
    extab_entries;
  Imk_elf.Builder.add_section builder ~name:".extab"
    ~sh_type:Imk_elf.Types.sht_progbits ~flags:Imk_elf.Types.shf_alloc
    ~addr:extab_va ~addralign:64 extab;
  (* .orc_unwind, optional *)
  let after_extab = extab_va + Bytes.length extab in
  let orc_va = Imk_memory.Addr.align_up after_extab 64 in
  let data_prev_end =
    if not config.unwinder_orc then after_extab
    else begin
      let entries = ref [] in
      Array.iter
        (fun (f : Function_graph.fn) ->
          for k = 0 to config.orc_per_fn - 1 do
            let off =
              Function_graph.fn_header_bytes
              + (k * (max 16 (Function_graph.fn_size f / (config.orc_per_fn + 1))))
            in
            if off < Function_graph.fn_size f then
              entries := (fn_va.(f.id) + off, f.id) :: !entries
          done)
        graph.fns;
      let entries = Array.of_list !entries in
      Array.sort compare entries;
      let norc = Array.length entries in
      let orc = Bytes.create (orc_header_bytes + (norc * orc_entry_bytes)) in
      Byteio.set_u32 orc 0 norc;
      Byteio.set_u32 orc 4 0;
      Array.iteri
        (fun k (ip_va, id) ->
          let off = orc_header_bytes + (k * orc_entry_bytes) in
          let entry_va = orc_va + off in
          Byteio.set_u32 orc off ((ip_va - entry_va) land 0xffffffff);
          Byteio.set_u32 orc (off + 4) id)
        entries;
      Imk_elf.Builder.add_section builder ~name:".orc_unwind"
        ~sh_type:Imk_elf.Types.sht_progbits ~flags:Imk_elf.Types.shf_alloc
        ~addr:orc_va ~addralign:64 orc;
      orc_va + Bytes.length orc
    end
  in
  (* .data: writable filler *)
  let data_va = Imk_memory.Addr.align_up data_prev_end 4096 in
  let data = Bytes.create config.data_bytes in
  fill_body data 0 config.data_bytes 0xDA7A rng;
  Imk_elf.Builder.add_section builder ~name:".data"
    ~sh_type:Imk_elf.Types.sht_progbits
    ~flags:(Imk_elf.Types.shf_alloc lor Imk_elf.Types.shf_write)
    ~addr:data_va ~addralign:4096 data;
  (* .bss *)
  let bss_va = Imk_memory.Addr.align_up (data_va + config.data_bytes) 4096 in
  Imk_elf.Builder.add_section builder ~name:".bss"
    ~sh_type:Imk_elf.Types.sht_nobits
    ~flags:(Imk_elf.Types.shf_alloc lor Imk_elf.Types.shf_write)
    ~addr:bss_va ~addralign:4096 ~mem_size:config.bss_bytes (Bytes.create 0);
  (* the §4.3 proposal: kernel constants as an ELF note, so the monitor
     need not hardcode them *)
  let note =
    Imk_elf.Note.encode
      (Imk_elf.Note.encode_kaslr
         {
           Imk_elf.Note.phys_start = Imk_memory.Addr.default_phys_load;
           phys_align = Imk_memory.Addr.kernel_align;
           kmap_base = Imk_memory.Addr.kmap_base;
           image_size_max = Imk_memory.Addr.kaslr_max_offset;
         })
  in
  Imk_elf.Builder.add_section builder ~name:Imk_elf.Note.section_name
    ~sh_type:Imk_elf.Types.sht_note ~flags:0 ~addr:0 ~addralign:4 note;
  (* symbols: one per function *)
  Array.iteri
    (fun i (f : Function_graph.fn) ->
      let section =
        if config.fg_sections then Printf.sprintf ".text.fn_%05d" i else ".text"
      in
      Imk_elf.Builder.add_symbol builder
        ~name:(Printf.sprintf "fn_%05d" i)
        ~value:fn_va.(i) ~size:(Function_graph.fn_size f)
        ~sym_type:Imk_elf.Types.stt_func ~section)
    graph.fns;
  Imk_elf.Builder.set_entry builder fn_va.(0);
  let phys_of_vaddr va = va - Imk_memory.Addr.kmap_base in
  let elf = Imk_elf.Builder.finalize builder ~phys_of_vaddr in
  let vmlinux = Imk_elf.Writer.write elf in
  let relocs =
    if not config.relocatable then Imk_elf.Relocation.empty
    else begin
      let sorted l = Array.of_list (List.sort_uniq compare l) in
      {
        Imk_elf.Relocation.abs64 = sorted !reloc_abs64;
        abs32 = sorted !reloc_abs32;
        inv32 = sorted !reloc_inv32;
      }
    end
  in
  {
    config;
    graph;
    elf;
    vmlinux;
    relocs;
    relocs_bytes = Imk_elf.Relocation.encode relocs;
    fn_va;
  }

let modeled_vmlinux_bytes b =
  Config.modeled_of_actual b.config (Bytes.length b.vmlinux)

let modeled_reloc_bytes b =
  Config.modeled_of_actual b.config (Bytes.length b.relocs_bytes)

let modeled_reloc_entries b =
  Config.modeled_of_actual b.config (Imk_elf.Relocation.entry_count b.relocs)

let modeled_sections b =
  Config.modeled_of_actual b.config (Array.length b.elf.Imk_elf.Types.sections)
