lib/kernel/unikernel.ml: Config Image Imk_util Int64 Option
