lib/kernel/unikernel.mli: Config Image
