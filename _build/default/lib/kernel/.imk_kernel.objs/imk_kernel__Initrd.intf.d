lib/kernel/initrd.mli: Imk_memory
