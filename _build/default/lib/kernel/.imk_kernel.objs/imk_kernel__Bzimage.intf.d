lib/kernel/bzimage.mli: Image
