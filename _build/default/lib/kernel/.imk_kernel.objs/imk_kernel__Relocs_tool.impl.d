lib/kernel/relocs_tool.ml: Array Byteio Bytes Function_graph Image Imk_elf Imk_util List Printf
