lib/kernel/function_graph.ml: Array Config Imk_elf Imk_entropy Imk_memory Int64
