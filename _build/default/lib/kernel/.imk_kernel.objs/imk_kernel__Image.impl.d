lib/kernel/image.ml: Array Byteio Bytes Char Config Function_graph Imk_elf Imk_entropy Imk_memory Imk_util Int64 List Printf
