lib/kernel/config.mli:
