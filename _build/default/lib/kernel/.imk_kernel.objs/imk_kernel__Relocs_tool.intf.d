lib/kernel/relocs_tool.mli: Imk_elf
