lib/kernel/bzimage.ml: Byteio Bytes Char Config Image Imk_compress Imk_elf Imk_entropy Imk_memory Imk_util Printf String
