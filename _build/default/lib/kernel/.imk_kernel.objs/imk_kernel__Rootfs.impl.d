lib/kernel/rootfs.ml: Byteio Bytes Char Crc Imk_entropy Imk_util
