lib/kernel/function_graph.mli: Config Imk_elf
