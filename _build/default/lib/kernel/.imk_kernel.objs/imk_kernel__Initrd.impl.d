lib/kernel/initrd.ml: Byteio Bytes Char Crc Imk_entropy Imk_memory Imk_util
