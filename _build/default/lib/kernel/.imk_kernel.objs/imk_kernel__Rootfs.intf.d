lib/kernel/rootfs.mli:
