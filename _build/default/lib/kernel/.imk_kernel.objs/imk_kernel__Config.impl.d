lib/kernel/config.ml: Imk_util Int64 List
