lib/kernel/image.mli: Config Function_graph Imk_elf
