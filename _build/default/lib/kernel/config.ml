type preset = Lupine | Aws | Ubuntu
type variant = Nokaslr | Kaslr | Fgkaslr

let preset_name = function Lupine -> "lupine" | Aws -> "aws" | Ubuntu -> "ubuntu"

let variant_name = function
  | Nokaslr -> "nokaslr"
  | Kaslr -> "kaslr"
  | Fgkaslr -> "fgkaslr"

let all_presets = [ Lupine; Aws; Ubuntu ]
let all_variants = [ Nokaslr; Kaslr; Fgkaslr ]

type t = {
  name : string;
  preset : preset;
  variant : variant;
  relocatable : bool;
  fg_sections : bool;
  unwinder_orc : bool;
  scale : int;
  functions : int;
  avg_fn_body : int;
  avg_call_sites : int;
  rodata_ptrs : int;
  data_bytes : int;
  bss_bytes : int;
  extab_entries : int;
  orc_per_fn : int;
  linux_boot_ms : float;
  memmap_ms_per_gib : float;
  seed : int64;
}

let kib = Imk_util.Units.kib

(* Per-preset shape parameters, calibrated so that at the default scale of
   16 the images model Table 1's sizes (Lupine 20M, AWS 39M, Ubuntu 45M)
   and Figure 9's Linux Boot times. *)
let preset_params = function
  | Lupine ->
      (`Functions 1200, `Body 480, `Sites 2, `Ptrs 400, `Data (kib 128),
       `Bss (kib 256), `Extab 60, `BootMs 8.5)
  | Aws ->
      (`Functions 2600, `Body 560, `Sites 3, `Ptrs 900, `Data (kib 280),
       `Bss (kib 512), `Extab 130, `BootMs 45.)
  | Ubuntu ->
      (* distribution kernels carry far more functions than microVM
         configs, which is what makes their FGKASLR cost grow
         super-linearly in Figure 9 *)
      (`Functions 5600, `Body 600, `Sites 3, `Ptrs 1200, `Data (kib 320),
       `Bss (kib 640), `Extab 160, `BootMs 152.)

let seed_of_name name =
  Int64.of_int (Imk_util.Crc.crc32_string name)

let make ?(scale = 16) ?seed preset variant =
  let name = preset_name preset ^ "-" ^ variant_name variant in
  let ( `Functions functions, `Body avg_fn_body, `Sites base_sites,
        `Ptrs rodata_ptrs, `Data data_bytes, `Bss bss_bytes,
        `Extab extab_entries, `BootMs linux_boot_ms ) =
    preset_params preset
  in
  (* -ffunction-sections builds emit extra relocations (per-section
     references), reflected in Table 1's larger fgkaslr relocs files *)
  let avg_call_sites =
    if variant = Fgkaslr then base_sites + 2 else base_sites
  in
  {
    name;
    preset;
    variant;
    relocatable = variant <> Nokaslr;
    fg_sections = variant = Fgkaslr;
    unwinder_orc = false;
    scale;
    functions;
    avg_fn_body;
    avg_call_sites;
    rodata_ptrs;
    data_bytes;
    bss_bytes;
    extab_entries;
    orc_per_fn = 2;
    linux_boot_ms;
    memmap_ms_per_gib = 10.;
    seed = (match seed with Some s -> s | None -> seed_of_name name);
  }

let all ?scale () =
  List.concat_map
    (fun p -> List.map (fun v -> make ?scale p v) all_variants)
    all_presets

let modeled_of_actual t n = n * t.scale
