(** Unikernel images — the §6 "Unikernel models" discussion, implemented.

    A unikernel links the application and a library OS into one address
    space and boots directly at its 64-bit entry point under a minimal
    monitor (Solo5/ukvm-style). Two properties matter here:

    - unikernels have {e no bootstrap loader at all}, so self-
      randomization is structurally impossible — if anyone randomizes
      them, it must be the monitor (the paper: "performing randomization
      in the monitor would be more efficient than self-randomization",
      and the Solo5 issue it cites considers exactly that);
    - they are tiny and single-purpose, so whole-system function-granular
      ASLR (app + libOS shuffled together) is cheap.

    The image format is the same self-verifying ELF as the Linux kernels
    (one function graph = app handlers + libOS routines linked together),
    built with function sections and relocation info so the unmodified
    in-monitor (FG)KASLR machinery applies. What distinguishes it is the
    configuration: a few hundred functions, millisecond "boot" (no init
    to speak of), and build scale 1 (unikernels are small enough to model
    at full size). *)

val config : ?seed:int64 -> aslr:bool -> unit -> Config.t
(** [config ~aslr ()] is the build configuration: ~320 functions, ~1 MiB
    image, 1.2 ms guest start. [aslr] selects a relocatable,
    function-sectioned build (for in-monitor whole-system ASLR) vs a
    bare fixed-address build — unikernels have no intermediate
    coarse-KASLR heritage to preserve. *)

val build : ?seed:int64 -> aslr:bool -> unit -> Image.built
(** [build ~aslr ()] is [Image.build (config ~aslr ())]. *)
