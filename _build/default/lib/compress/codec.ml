exception Corrupt of string

type t = {
  name : string;
  compress : bytes -> bytes;
  decompress : bytes -> bytes;
}

let magic = 0x494d4b43 (* "IMKC" *)
let header_len = 4 + 4 + 8 + 4

let name_hash name = Imk_util.Crc.crc32_string name

let frame ~name ~orig ~payload =
  let out = Bytes.create (header_len + Bytes.length payload) in
  Imk_util.Byteio.set_u32 out 0 magic;
  Imk_util.Byteio.set_u32 out 4 (name_hash name);
  Imk_util.Byteio.set_addr out 8 (Bytes.length orig);
  Imk_util.Byteio.set_u32 out 16 (Imk_util.Crc.crc32 orig 0 (Bytes.length orig));
  Bytes.blit payload 0 out header_len (Bytes.length payload);
  out

let max_orig_len = 1 lsl 30
(* kernels are well under 1 GiB; anything larger in a header is corruption
   and must not drive decoder allocations *)

let unframe ~name b =
  if Bytes.length b < header_len then raise (Corrupt "frame: truncated header");
  if Imk_util.Byteio.get_u32 b 0 <> magic then raise (Corrupt "frame: bad magic");
  if Imk_util.Byteio.get_u32 b 4 <> name_hash name then
    raise (Corrupt ("frame: payload is not " ^ name));
  let orig_len =
    try Imk_util.Byteio.get_addr b 8
    with Invalid_argument _ -> raise (Corrupt "frame: implausible length")
  in
  if orig_len > max_orig_len then raise (Corrupt "frame: implausible length");
  let crc = Imk_util.Byteio.get_u32 b 16 in
  (orig_len, crc, Bytes.sub b header_len (Bytes.length b - header_len))

let check_crc ~orig_crc data =
  if Imk_util.Crc.crc32 data 0 (Bytes.length data) <> orig_crc then
    raise (Corrupt "frame: CRC mismatch after decompression")

let make ~name ~encode ~decode =
  let compress input = frame ~name ~orig:input ~payload:(encode input) in
  let decompress framed =
    let orig_len, crc, payload = unframe ~name framed in
    let out =
      (* malformed payloads surface as low-level exceptions from the
         bit readers and range coders; all of them mean one thing here *)
      try decode payload ~orig_len with
      | Corrupt _ as e -> raise e
      | Bitio.Reader.Truncated -> raise (Corrupt (name ^ ": truncated bitstream"))
      | Invalid_argument m -> raise (Corrupt (name ^ ": malformed stream: " ^ m))
      | Failure m -> raise (Corrupt (name ^ ": malformed stream: " ^ m))
    in
    if Bytes.length out <> orig_len then
      raise (Corrupt "frame: decompressed length mismatch");
    check_crc ~orig_crc:crc out;
    out
  in
  { name; compress; decompress }
