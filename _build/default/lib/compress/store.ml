let codec =
  Codec.make ~name:"none"
    ~encode:(fun input -> Bytes.copy input)
    ~decode:(fun payload ~orig_len ->
      if Bytes.length payload <> orig_len then
        raise (Codec.Corrupt "store: length mismatch");
      Bytes.copy payload)
