(** Binary adaptive range coder, LZMA-style.

    Probabilities are 11-bit adaptive counters (initialised to 1/2,
    updated with shift 5), and the coder is the standard carry-counting
    32-bit range coder used by LZMA: the encoder tracks a cache byte and a
    run of pending 0xFF bytes; the decoder primes itself with five bytes
    (the first is a zero pad). Bit-tree helpers cover the fixed-width
    fields the LZMA models use. *)

type prob = int array
(** A table of adaptive probability counters. *)

val make_probs : int -> prob
(** [make_probs n] is [n] counters initialised to probability 1/2. *)

module Encoder : sig
  type t

  val create : unit -> t

  val encode_bit : t -> prob -> int -> int -> unit
  (** [encode_bit e probs idx bit] encodes [bit] with counter
      [probs.(idx)], adapting it. *)

  val encode_direct : t -> int -> int -> unit
  (** [encode_direct e v n] encodes the low [n] bits of [v] at fixed
      probability 1/2 (LZMA "direct bits"), MSB first. *)

  val encode_tree : t -> prob -> int -> int -> unit
  (** [encode_tree e probs v n] encodes [v] (an [n]-bit value) through a
      bit tree of [2^n] counters, MSB first. *)

  val finish : t -> bytes
  (** [finish e] flushes the coder and returns the stream. *)
end

module Decoder : sig
  type t

  val create : bytes -> pos:int -> t
  (** [create b ~pos] primes the decoder from [b] starting at [pos].
      Raises [Codec.Corrupt] if fewer than five bytes remain. *)

  val decode_bit : t -> prob -> int -> int
  val decode_direct : t -> int -> int
  val decode_tree : t -> prob -> int -> int
end
