(** Codec registry.

    The kernel build and the experiment harness select codecs by name;
    [bakeoff_codecs] is the set of six compressed schemes compared in the
    paper's Figure 3, and [all] additionally includes "none". *)

val all : Codec.t list
(** Every codec, "none" first. *)

val bakeoff_codecs : Codec.t list
(** The six real compression schemes: gzip, bzip2, lzma, xz, lzo, lz4 —
    in the paper's presentation order. *)

val find : string -> Codec.t
(** [find name] looks a codec up by name. Raises [Not_found] for unknown
    names. *)

val find_opt : string -> Codec.t option
