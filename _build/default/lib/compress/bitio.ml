module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable nbits : int; mutable total : int }

  let create () = { buf = Buffer.create 4096; acc = 0; nbits = 0; total = 0 }

  let flush_byte w =
    Buffer.add_char w.buf (Char.chr (w.acc land 0xff));
    w.acc <- 0;
    w.nbits <- 0

  let put_bit w b =
    w.acc <- (w.acc lsl 1) lor (b land 1);
    w.nbits <- w.nbits + 1;
    w.total <- w.total + 1;
    if w.nbits = 8 then flush_byte w

  let put_bits w v n =
    if n < 0 || n > 24 then invalid_arg "Bitio.put_bits: n out of range";
    for i = n - 1 downto 0 do
      put_bit w ((v lsr i) land 1)
    done

  let put_code w ~code ~len = put_bits w code len

  let align_byte w = while w.nbits <> 0 do put_bit w 0 done

  let contents w =
    align_byte w;
    Buffer.to_bytes w.buf

  let bit_length w = w.total
end

module Reader = struct
  type t = { data : bytes; mutable pos : int; mutable acc : int; mutable nbits : int }

  exception Truncated

  let create data ~pos = { data; pos; acc = 0; nbits = 0 }

  let get_bit r =
    if r.nbits = 0 then begin
      if r.pos >= Bytes.length r.data then raise Truncated;
      r.acc <- Char.code (Bytes.get r.data r.pos);
      r.pos <- r.pos + 1;
      r.nbits <- 8
    end;
    r.nbits <- r.nbits - 1;
    (r.acc lsr r.nbits) land 1

  let get_bits r n =
    if n < 0 || n > 24 then invalid_arg "Bitio.get_bits: n out of range";
    let v = ref 0 in
    for _ = 1 to n do
      v := (!v lsl 1) lor get_bit r
    done;
    !v

  let align_byte r = r.nbits <- 0

  let byte_pos r = r.pos
end
