let stream_flags = 0x01 (* check type: CRC32 *)

let encode_payload input =
  let inner = Lzma.encode_payload input in
  let out = Bytes.create (1 + 4 + Bytes.length inner) in
  Imk_util.Byteio.set_u8 out 0 stream_flags;
  Imk_util.Byteio.set_u32 out 1 (Imk_util.Crc.crc32 inner 0 (Bytes.length inner));
  Bytes.blit inner 0 out 5 (Bytes.length inner);
  out

let decode_payload b ~orig_len =
  if Bytes.length b < 5 then raise (Codec.Corrupt "xz: truncated container");
  if Imk_util.Byteio.get_u8 b 0 <> stream_flags then
    raise (Codec.Corrupt "xz: unsupported stream flags");
  let crc = Imk_util.Byteio.get_u32 b 1 in
  let inner = Bytes.sub b 5 (Bytes.length b - 5) in
  if Imk_util.Crc.crc32 inner 0 (Bytes.length inner) <> crc then
    raise (Codec.Corrupt "xz: compressed payload CRC mismatch");
  Lzma.decode_payload inner ~orig_len

let codec = Codec.make ~name:"xz" ~encode:encode_payload ~decode:decode_payload
