(** LZ4-style codec: byte-aligned LZ77 with token-packed sequences.

    The format follows the real LZ4 block layout — a token byte holding
    4-bit literal-run and match-length fields (15 escaping to 255-run
    extension bytes), the literal bytes, then a 2-byte little-endian match
    distance — which is what makes the decoder a short branch-light copy
    loop and LZ4 the fastest scheme to boot from (paper Figure 3). *)

val codec : Codec.t

val encode_payload : bytes -> bytes
(** [encode_payload input] is the raw block encoding without the standard
    frame; exposed for the format-level unit tests. *)

val decode_payload : bytes -> orig_len:int -> bytes
(** [decode_payload b ~orig_len] inverts {!encode_payload}. Raises
    [Codec.Corrupt] on malformed input. *)
