(** LZO-style codec: single-probe LZ77 with one-byte control codes.

    Control bytes below 0x80 introduce a literal run of [c+1] bytes;
    [0x80 lor (len-3)] introduces a match of 3–66 bytes at a 2-byte
    little-endian distance. The single-probe match finder makes
    compression very fast at a weaker ratio than LZ4's chained search —
    LZO's historical niche. *)

val codec : Codec.t

val encode_payload : bytes -> bytes
val decode_payload : bytes -> orig_len:int -> bytes
