(** The common compression-codec interface.

    Each codec turns an arbitrary byte string into a self-describing frame
    and back. The frame carries the codec id, the uncompressed length and
    a CRC-32 of the original data, so decompression validates integrity —
    the same job the per-format trailers (gzip CRC, xz check, ...) do for
    real kernels. Frames are produced by {!frame} and consumed by
    {!unframe}; the raw codecs under this interface only see payloads.

    The six registered codecs mirror the six kernel compression schemes the
    paper's Figure 3 compares. Decompression *rates* for the virtual clock
    live in [Imk_vclock.Cost_model]; this library is pure data
    transformation. *)

exception Corrupt of string
(** Raised by [decompress] on malformed or integrity-failing input. *)

type t = {
  name : string;  (** "none", "lz4", "lzo", "gzip", "bzip2", "xz", "lzma" *)
  compress : bytes -> bytes;
  decompress : bytes -> bytes;
}

val frame : name:string -> orig:bytes -> payload:bytes -> bytes
(** [frame ~name ~orig ~payload] wraps [payload] with the standard header:
    magic, codec-name hash, original length, CRC-32 of [orig]. *)

val unframe : name:string -> bytes -> int * int * bytes
(** [unframe ~name b] validates the header and returns
    [(orig_len, crc, payload)]. Raises {!Corrupt} on bad magic, codec
    mismatch or truncation. *)

val check_crc : orig_crc:int -> bytes -> unit
(** [check_crc ~orig_crc data] raises {!Corrupt} if the CRC-32 of [data]
    differs from [orig_crc]. *)

val make : name:string -> encode:(bytes -> bytes) -> decode:(bytes -> orig_len:int -> bytes) -> t
(** [make ~name ~encode ~decode] lifts a raw payload codec into the framed
    interface, adding header handling and the CRC check. [decode] receives
    the expected output length from the frame so codecs can preallocate. *)
