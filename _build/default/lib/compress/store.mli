(** The "none" codec: stores the payload verbatim.

    Matches the paper's compression-none kernels (§3.3), where the
    "compressed" blob inside the bzImage is the kernel itself; the framed
    CRC still validates integrity. *)

val codec : Codec.t
