lib/compress/store.ml: Bytes Codec
