lib/compress/bitio.mli:
