lib/compress/lzo.mli: Codec
