lib/compress/registry.mli: Codec
