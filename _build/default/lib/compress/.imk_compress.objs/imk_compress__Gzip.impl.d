lib/compress/gzip.ml: Array Bitio Char Codec Huffman List Lz77
