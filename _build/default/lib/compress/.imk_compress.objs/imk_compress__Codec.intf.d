lib/compress/codec.mli:
