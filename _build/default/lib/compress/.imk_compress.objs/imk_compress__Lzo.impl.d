lib/compress/lzo.ml: Buffer Bytes Char Codec Lz77 String
