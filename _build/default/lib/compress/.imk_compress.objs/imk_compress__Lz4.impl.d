lib/compress/lz4.ml: Buffer Bytes Char Codec Lz77
