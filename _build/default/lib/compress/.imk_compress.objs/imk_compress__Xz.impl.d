lib/compress/xz.ml: Bytes Codec Imk_util Lzma
