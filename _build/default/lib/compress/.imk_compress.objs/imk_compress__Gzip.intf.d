lib/compress/gzip.mli: Codec
