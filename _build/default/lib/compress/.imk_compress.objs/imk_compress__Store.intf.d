lib/compress/store.mli: Codec
