lib/compress/mtf.mli:
