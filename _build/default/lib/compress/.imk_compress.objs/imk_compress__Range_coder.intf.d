lib/compress/range_coder.mli:
