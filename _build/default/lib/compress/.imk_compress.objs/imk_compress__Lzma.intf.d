lib/compress/lzma.mli: Codec
