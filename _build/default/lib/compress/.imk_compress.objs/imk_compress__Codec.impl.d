lib/compress/codec.ml: Bitio Bytes Imk_util
