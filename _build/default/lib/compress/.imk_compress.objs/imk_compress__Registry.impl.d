lib/compress/registry.ml: Bzip2 Codec Gzip List Lz4 Lzma Lzo Store Xz
