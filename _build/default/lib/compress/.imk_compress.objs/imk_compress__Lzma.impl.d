lib/compress/lzma.ml: Array Bytes Char Codec Lz77 Range_coder
