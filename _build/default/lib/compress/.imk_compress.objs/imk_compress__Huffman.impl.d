lib/compress/huffman.ml: Array Bitio Codec List Seq
