lib/compress/bzip2.ml: Array Bitio Buffer Bwt Bytes Codec Huffman List Mtf
