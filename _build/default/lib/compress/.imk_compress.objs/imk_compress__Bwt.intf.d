lib/compress/bwt.mli:
