lib/compress/range_coder.ml: Array Buffer Bytes Char Codec
