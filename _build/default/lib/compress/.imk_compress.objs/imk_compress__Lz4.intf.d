lib/compress/lz4.mli: Codec
