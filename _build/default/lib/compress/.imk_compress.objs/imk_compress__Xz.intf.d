lib/compress/xz.mli: Codec
