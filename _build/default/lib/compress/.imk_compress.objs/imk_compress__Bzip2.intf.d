lib/compress/bzip2.mli: Codec
