lib/compress/lz77.ml: Array Bytes Char Codec
