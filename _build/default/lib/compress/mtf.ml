let fresh_table () = Array.init 256 (fun i -> i)

let move_to_front table idx =
  let v = table.(idx) in
  Array.blit table 0 table 1 idx;
  table.(0) <- v;
  v

let encode b =
  let table = fresh_table () in
  Array.init (Bytes.length b) (fun i ->
      let c = Char.code (Bytes.get b i) in
      (* find current index of c *)
      let rec find j = if table.(j) = c then j else find (j + 1) in
      let idx = find 0 in
      ignore (move_to_front table idx);
      idx)

let decode xs =
  let table = fresh_table () in
  let out = Bytes.create (Array.length xs) in
  Array.iteri
    (fun i idx ->
      if idx < 0 || idx > 255 then raise (Codec.Corrupt "mtf: index out of range");
      let v = move_to_front table idx in
      Bytes.set out i (Char.chr v))
    xs;
  out
