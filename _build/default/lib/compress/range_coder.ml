let prob_bits = 11
let prob_init = 1 lsl (prob_bits - 1)
let move_bits = 5
let top = 1 lsl 24

type prob = int array

let make_probs n = Array.make n prob_init

module Encoder = struct
  type t = {
    buf : Buffer.t;
    mutable low : int; (* up to 33 bits *)
    mutable range : int; (* 32 bits *)
    mutable cache : int;
    mutable cache_size : int;
        (* number of bytes represented by [cache] + pending 0xffs; starts
           at 1 to swallow the initial zero pad byte *)
  }

  let create () =
    { buf = Buffer.create 4096; low = 0; range = 0xffff_ffff; cache = 0; cache_size = 1 }

  let shift_low e =
    if e.low < 0xff00_0000 || e.low > 0xffff_ffff then begin
      let carry = e.low lsr 32 in
      (* flush cache byte plus any pending 0xff run, propagating carry *)
      let b = ref e.cache in
      for _ = 1 to e.cache_size do
        Buffer.add_char e.buf (Char.chr ((!b + carry) land 0xff));
        b := 0xff
      done;
      e.cache <- (e.low lsr 24) land 0xff;
      e.cache_size <- 0
    end;
    e.cache_size <- e.cache_size + 1;
    e.low <- (e.low lsl 8) land 0xffff_ffff

  let normalize e =
    while e.range < top do
      e.range <- (e.range lsl 8) land 0xffff_ffff;
      shift_low e
    done

  let encode_bit e probs idx bit =
    let p = probs.(idx) in
    let bound = (e.range lsr prob_bits) * p in
    if bit = 0 then begin
      e.range <- bound;
      probs.(idx) <- p + (((1 lsl prob_bits) - p) lsr move_bits)
    end
    else begin
      e.low <- e.low + bound;
      e.range <- e.range - bound;
      probs.(idx) <- p - (p lsr move_bits)
    end;
    normalize e

  let encode_direct e v n =
    for i = n - 1 downto 0 do
      e.range <- e.range lsr 1;
      let bit = (v lsr i) land 1 in
      if bit = 1 then e.low <- e.low + e.range;
      normalize e
    done

  let encode_tree e probs v n =
    let m = ref 1 in
    for i = n - 1 downto 0 do
      let bit = (v lsr i) land 1 in
      encode_bit e probs !m bit;
      m := (!m lsl 1) lor bit
    done

  let finish e =
    for _ = 1 to 5 do
      shift_low e
    done;
    Buffer.to_bytes e.buf
end

module Decoder = struct
  type t = {
    data : bytes;
    mutable pos : int;
    mutable code : int;
    mutable range : int;
  }

  let next_byte d =
    if d.pos >= Bytes.length d.data then 0
    else begin
      let c = Char.code (Bytes.get d.data d.pos) in
      d.pos <- d.pos + 1;
      c
    end

  let create data ~pos =
    if Bytes.length data - pos < 5 then raise (Codec.Corrupt "range: truncated stream");
    let d = { data; pos; code = 0; range = 0xffff_ffff } in
    ignore (next_byte d);
    for _ = 1 to 4 do
      d.code <- ((d.code lsl 8) lor next_byte d) land 0xffff_ffff
    done;
    d

  let normalize d =
    while d.range < top do
      d.range <- (d.range lsl 8) land 0xffff_ffff;
      d.code <- ((d.code lsl 8) lor next_byte d) land 0xffff_ffff
    done

  let decode_bit d probs idx =
    let p = probs.(idx) in
    let bound = (d.range lsr prob_bits) * p in
    let bit =
      if d.code < bound then begin
        d.range <- bound;
        probs.(idx) <- p + (((1 lsl prob_bits) - p) lsr move_bits);
        0
      end
      else begin
        d.code <- d.code - bound;
        d.range <- d.range - bound;
        probs.(idx) <- p - (p lsr move_bits);
        1
      end
    in
    normalize d;
    bit

  let decode_direct d n =
    let v = ref 0 in
    for _ = 1 to n do
      d.range <- d.range lsr 1;
      let bit = if d.code >= d.range then 1 else 0 in
      if bit = 1 then d.code <- d.code - d.range;
      v := (!v lsl 1) lor bit;
      normalize d
    done;
    !v

  let decode_tree d probs n =
    let m = ref 1 in
    for _ = 1 to n do
      m := (!m lsl 1) lor decode_bit d probs !m
    done;
    !m - (1 lsl n)
end
