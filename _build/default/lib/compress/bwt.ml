type transformed = { last_column : bytes; primary : int }

(* Prefix-doubling suffix array of block+sentinel. Ranks start from byte
   values (+1, sentinel 0) and double until all distinct; early exit makes
   this fast on high-entropy kernel images. *)
let suffix_array block =
  let n = Bytes.length block + 1 in
  let key i = if i = Bytes.length block then 0 else Char.code (Bytes.get block i) + 1 in
  let rank = Array.init n key in
  let sa = Array.init n (fun i -> i) in
  let tmp = Array.make n 0 in
  let k = ref 1 in
  let distinct = ref false in
  while (not !distinct) && !k < n do
    let pair i = (rank.(i), if i + !k < n then rank.(i + !k) + 1 else 0) in
    Array.sort (fun a b -> compare (pair a) (pair b)) sa;
    tmp.(sa.(0)) <- 0;
    for i = 1 to n - 1 do
      tmp.(sa.(i)) <-
        (tmp.(sa.(i - 1)) + if pair sa.(i) = pair sa.(i - 1) then 0 else 1)
    done;
    Array.blit tmp 0 rank 0 n;
    distinct := rank.(sa.(n - 1)) = n - 1;
    k := !k * 2
  done;
  sa

let forward block =
  let n = Bytes.length block in
  let sa = suffix_array block in
  let last = Bytes.create n in
  let primary = ref (-1) in
  let w = ref 0 in
  Array.iteri
    (fun row s ->
      if s = 0 then primary := row
      else begin
        Bytes.set last !w (Bytes.get block (s - 1));
        incr w
      end)
    sa;
  assert (!primary >= 0);
  { last_column = last; primary = !primary }

let inverse { last_column; primary } =
  let n = Bytes.length last_column in
  if primary < 0 || primary > n then raise (Codec.Corrupt "bwt: bad primary index");
  if n = 0 then Bytes.create 0
  else begin
    (* Conceptual first column = sorted (last column + sentinel at row
       [primary]). Alphabet: 0 = sentinel, byte+1 otherwise. *)
    let count = Array.make 258 0 in
    count.(0) <- 1;
    Bytes.iter (fun c -> count.(Char.code c + 1) <- count.(Char.code c + 1) + 1) last_column;
    let starts = Array.make 258 0 in
    let acc = ref 0 in
    for s = 0 to 257 do
      starts.(s) <- !acc;
      acc := !acc + count.(s)
    done;
    (* LF mapping: for each row (in last-column order including the
       sentinel row), its position in the first column. Rows of the same
       symbol keep relative order. *)
    let rows = n + 1 in
    let lf = Array.make rows 0 in
    let next = Array.copy starts in
    let sym_of_row row =
      if row = primary then 0
      else
        let idx = if row < primary then row else row - 1 in
        Char.code (Bytes.get last_column idx) + 1
    in
    for row = 0 to rows - 1 do
      let s = sym_of_row row in
      lf.(row) <- next.(s);
      next.(s) <- next.(s) + 1
    done;
    (* Walk backwards from the sentinel row. Row [primary] holds the
       sentinel in the last column, i.e. the rotation starting at position
       0; following LF yields the text right-to-left. *)
    let out = Bytes.create n in
    let row = ref primary in
    for i = n - 1 downto 0 do
      let s = sym_of_row lf.(!row) in
      if s = 0 then raise (Codec.Corrupt "bwt: sentinel cycle");
      Bytes.set out i (Char.chr (s - 1));
      row := lf.(!row)
    done;
    out
  end
