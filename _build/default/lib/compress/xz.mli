(** XZ-style codec: the LZMA coder in an integrity-checked container.

    Real xz wraps LZMA2 in a stream with flags and a CRC over the
    compressed blocks; this codec does the same around {!Lzma}'s payload
    encoding — a leading flags byte and a CRC-32 of the compressed payload
    verified *before* decoding begins. Ratio tracks LZMA with a few bytes
    of overhead; decompression is marginally slower (the extra checksum
    pass), matching xz's position next to lzma in Figure 3. *)

val codec : Codec.t
