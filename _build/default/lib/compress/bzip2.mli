(** Bzip2-style codec: blockwise BWT → MTF → zero-run coding → Huffman.

    Each 128 KiB block goes through the Burrows–Wheeler transform, the
    move-to-front transform, bzip2's RUNA/RUNB bijective-base-2 encoding
    of zero runs, and a per-block canonical Huffman coder. Block headers
    carry the BWT primary index and the block's original length. Slowest
    of the byte-oriented schemes but strong on the repetitive regions of
    kernel images. *)

val codec : Codec.t

val encode_payload : bytes -> bytes
val decode_payload : bytes -> orig_len:int -> bytes

val rle2_encode : int array -> int array
(** MTF output → RUNA/RUNB symbol stream (exposed for unit tests):
    symbol 0 = RUNA, 1 = RUNB encode zero-run lengths in bijective base 2;
    nonzero MTF value [v] becomes symbol [v+1]; the end-of-block symbol
    257 is appended. *)

val rle2_decode : int array -> int array
(** Inverse of {!rle2_encode} (consumes up to the end-of-block symbol;
    raises [Codec.Corrupt] if it is missing). *)
