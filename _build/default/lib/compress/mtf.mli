(** Move-to-front transform, the locality-to-skew stage of bzip2. *)

val encode : bytes -> int array
(** [encode b] maps each byte to its current index in a 256-entry
    recency list, moving it to the front. BWT output full of runs becomes
    mostly zeros. *)

val decode : int array -> bytes
(** [decode xs] inverts {!encode}. Raises [Codec.Corrupt] if any value is
    outside [0, 255]. *)
