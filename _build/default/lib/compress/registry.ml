let bakeoff_codecs =
  [ Gzip.codec; Bzip2.codec; Lzma.codec; Xz.codec; Lzo.codec; Lz4.codec ]

let all = Store.codec :: bakeoff_codecs

let find_opt name = List.find_opt (fun c -> c.Codec.name = name) all

let find name =
  match find_opt name with Some c -> c | None -> raise Not_found
