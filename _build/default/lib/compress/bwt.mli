(** Burrows–Wheeler transform over sentinel-terminated blocks.

    The forward transform computes the suffix array of [block ^ "$"]
    (with the sentinel strictly smaller than every byte) by prefix
    doubling, then reads off the last column. The inverse rebuilds the
    block with the standard LF-mapping walk. Used by the bzip2-style
    codec. *)

type transformed = {
  last_column : bytes;
      (** the BWT output, [length block] bytes; the sentinel row is not
          materialized *)
  primary : int;
      (** row index at which the sentinel appears in the last column —
          needed for inversion, stored in each compressed block *)
}

val forward : bytes -> transformed
(** [forward block] transforms a block. [block] may be empty. *)

val inverse : transformed -> bytes
(** [inverse t] recovers the original block. Raises [Codec.Corrupt] if
    [t.primary] is out of range (corrupt stream). *)

val suffix_array : bytes -> int array
(** [suffix_array b] is the suffix array of [b ^ "$"] including the
    sentinel suffix at index 0; exposed for property tests. *)
