(* Build raw Huffman code lengths with a pairing of the two least frequent
   subtrees, then canonicalize. A simple array-based priority selection is
   enough: alphabets here are at most a few hundred symbols. *)

let raw_lengths freqs =
  let n = Array.length freqs in
  let lens = Array.make n 0 in
  let live =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun i -> if freqs.(i) > 0 then Some i else None)
            (Seq.init n (fun i -> i))))
  in
  match live with
  | [] -> lens
  | [ only ] ->
      lens.(only) <- 1;
      lens
  | _ ->
      (* nodes: (freq, members) where members lists leaf symbols; merging
         two nodes deepens every member by one. *)
      let nodes = ref (List.map (fun i -> (freqs.(i), [ i ])) live) in
      let pop_min () =
        match !nodes with
        | [] -> assert false
        | first :: _ ->
            let best =
              List.fold_left
                (fun acc node -> if fst node < fst acc then node else acc)
                first !nodes
            in
            (* remove one occurrence (physical equality) *)
            let removed = ref false in
            nodes :=
              List.filter
                (fun node ->
                  if (not !removed) && node == best then begin
                    removed := true;
                    false
                  end
                  else true)
                !nodes;
            best
      in
      while List.length !nodes > 1 do
        let f1, m1 = pop_min () in
        let f2, m2 = pop_min () in
        List.iter (fun i -> lens.(i) <- lens.(i) + 1) m1;
        List.iter (fun i -> lens.(i) <- lens.(i) + 1) m2;
        nodes := (f1 + f2, m1 @ m2) :: !nodes
      done;
      lens

let kraft_sum lens =
  Array.fold_left
    (fun acc l -> if l > 0 then acc +. (1. /. float_of_int (1 lsl l)) else acc)
    0. lens

let kraft_sum_valid lens = kraft_sum lens <= 1. +. 1e-9

let lengths_of_freqs ?(max_len = 15) freqs =
  let lens = raw_lengths freqs in
  let too_deep = Array.exists (fun l -> l > max_len) lens in
  if not too_deep then lens
  else begin
    (* Clamp and repair the Kraft inequality by demoting the deepest
       still-shortenable codes — the standard zlib-style fixup. *)
    Array.iteri (fun i l -> if l > max_len then lens.(i) <- max_len) lens;
    let over () = kraft_sum lens > 1. +. 1e-12 in
    while over () do
      (* lengthen the symbol with the smallest length < max_len; this
         frees the most code space per step *)
      let best = ref (-1) in
      Array.iteri
        (fun i l ->
          if l > 0 && l < max_len && (!best = -1 || l < lens.(!best)) then
            best := i)
        lens;
      if !best = -1 then invalid_arg "Huffman: cannot satisfy max_len";
      lens.(!best) <- lens.(!best) + 1
    done;
    lens
  end

(* Canonical code assignment shared by encoder and decoder. *)
let canonical_codes lens =
  let max_len = Array.fold_left max 0 lens in
  let count = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then count.(l) <- count.(l) + 1) lens;
  let next = Array.make (max_len + 2) 0 in
  let code = ref 0 in
  for l = 1 to max_len do
    code := (!code + count.(l - 1)) lsl 1;
    next.(l) <- !code
  done;
  let codes = Array.make (Array.length lens) 0 in
  for i = 0 to Array.length lens - 1 do
    let l = lens.(i) in
    if l > 0 then begin
      codes.(i) <- next.(l);
      next.(l) <- next.(l) + 1
    end
  done;
  (codes, max_len)

type encoder = { e_lens : int array; e_codes : int array }

let encoder_of_lengths lens =
  let codes, _ = canonical_codes lens in
  { e_lens = Array.copy lens; e_codes = codes }

let encode enc w sym =
  let len = enc.e_lens.(sym) in
  if len = 0 then invalid_arg "Huffman.encode: symbol has no code";
  Bitio.Writer.put_code w ~code:enc.e_codes.(sym) ~len

type decoder = {
  d_max_len : int;
  d_first_code : int array;  (** smallest code of each length *)
  d_first_index : int array;  (** index into [d_symbols] for that code *)
  d_count : int array;
  d_symbols : int array;  (** symbols sorted by (length, symbol) *)
}

let decoder_of_lengths lens =
  if not (kraft_sum_valid lens) then
    raise (Codec.Corrupt "huffman: over-subscribed code lengths");
  let codes, max_len = canonical_codes lens in
  ignore codes;
  let count = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then count.(l) <- count.(l) + 1) lens;
  let symbols =
    let syms = ref [] in
    for i = Array.length lens - 1 downto 0 do
      if lens.(i) > 0 then syms := i :: !syms
    done;
    let arr = Array.of_list !syms in
    Array.sort (fun a b -> compare (lens.(a), a) (lens.(b), b)) arr;
    arr
  in
  let first_code = Array.make (max_len + 1) 0 in
  let first_index = Array.make (max_len + 1) 0 in
  let code = ref 0 and index = ref 0 in
  for l = 1 to max_len do
    code := (!code + if l = 1 then 0 else count.(l - 1)) lsl 1;
    first_code.(l) <- !code;
    first_index.(l) <- !index;
    index := !index + count.(l)
  done;
  {
    d_max_len = max_len;
    d_first_code = first_code;
    d_first_index = first_index;
    d_count = count;
    d_symbols = symbols;
  }

let decode dec r =
  let code = ref 0 and len = ref 0 in
  let result = ref (-1) in
  while !result < 0 do
    code := (!code lsl 1) lor Bitio.Reader.get_bit r;
    incr len;
    if !len > dec.d_max_len then raise (Codec.Corrupt "huffman: invalid code");
    let offset = !code - dec.d_first_code.(!len) in
    if offset >= 0 && offset < dec.d_count.(!len) then
      result := dec.d_symbols.(dec.d_first_index.(!len) + offset)
  done;
  !result

let write_lengths w lens =
  Array.iter
    (fun l ->
      if l > 15 then invalid_arg "Huffman.write_lengths: length > 15";
      Bitio.Writer.put_bits w l 4)
    lens

let read_lengths r n = Array.init n (fun _ -> Bitio.Reader.get_bits r 4)
