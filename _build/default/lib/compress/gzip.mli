(** Gzip-style codec: DEFLATE-shaped LZ77 + dynamic canonical Huffman.

    Tokens from a 32 KiB-window, deep-chain LZ77 parse are entropy-coded
    with two per-stream Huffman tables (literal/length and distance),
    using the real DEFLATE length and distance code tables with extra
    bits. The table header stores code lengths as nibbles rather than
    DEFLATE's run-length-coded header — a simplification that costs ~160
    bytes per stream and changes nothing structural. *)

val codec : Codec.t

val encode_payload : bytes -> bytes
val decode_payload : bytes -> orig_len:int -> bytes

val length_code : int -> int * int * int
(** [length_code len] is [(symbol, extra_bits, extra_value)] for a match
    length in [3, 258], using the DEFLATE table (symbols 257–284 here
    remapped to 257+code_index). Exposed for unit tests. *)

val distance_code : int -> int * int * int
(** [distance_code dist] is [(symbol, extra_bits, extra_value)] for a
    distance in [1, 32768]. *)
