(** Integrity checksums used by the compression container formats.

    CRC-32 (IEEE 802.3 polynomial, as in gzip/xz) and Adler-32 (as in
    zlib). Both are implemented from scratch; values match the standard
    algorithms so container self-checks behave like their real
    counterparts. *)

val crc32 : ?init:int -> bytes -> int -> int -> int
(** [crc32 ?init b off len] computes the CRC-32 of [len] bytes of [b]
    starting at [off]. [init] (default 0) allows incremental computation:
    feed the previous result back in. The result is in [0, 0xffffffff]. *)

val crc32_string : string -> int
(** [crc32_string s] is the CRC-32 of all of [s]. *)

val adler32 : ?init:int -> bytes -> int -> int -> int
(** [adler32 ?init b off len] computes Adler-32 over the given range.
    [init] defaults to 1 as specified by zlib. *)
