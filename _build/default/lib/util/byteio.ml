let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))
let get_u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off (v land 0xffff)

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let get_i64 b off = Bytes.get_int64_le b off
let set_i64 b off v = Bytes.set_int64_le b off v

let get_addr b off =
  let v = Bytes.get_int64_le b off in
  if Int64.compare v 0L < 0 || Int64.compare v 0x3fff_ffff_ffff_ffffL > 0 then
    invalid_arg "Byteio.get_addr: value does not fit in a native int"
  else Int64.to_int v

let set_addr b off v =
  if v < 0 then invalid_arg "Byteio.set_addr: negative address";
  Bytes.set_int64_le b off (Int64.of_int v)

let get_u32_signed b off = Int32.to_int (Bytes.get_int32_le b off)

let blit_string s dst off = Bytes.blit_string s 0 dst off (String.length s)
let sub_string = Bytes.sub_string
let fill_zero b off len = Bytes.fill b off len '\000'

let hex_dump ?(max_bytes = 64) b =
  let n = min max_bytes (Bytes.length b) in
  let buf = Buffer.create (n * 4) in
  let rec row off =
    if off < n then begin
      Buffer.add_string buf (Printf.sprintf "%08x  " off);
      let stop = min (off + 16) n in
      for i = off to off + 15 do
        if i < stop then
          Buffer.add_string buf (Printf.sprintf "%02x " (get_u8 b i))
        else Buffer.add_string buf "   "
      done;
      Buffer.add_string buf " |";
      for i = off to stop - 1 do
        let c = Bytes.get b i in
        Buffer.add_char buf (if c >= ' ' && c <= '~' then c else '.')
      done;
      Buffer.add_string buf "|\n";
      row (off + 16)
    end
  in
  row 0;
  Buffer.contents buf
