let crc_table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 <> 0 then c := 0xedb88320 lxor (!c lsr 1)
         else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

let crc32 ?(init = 0) b off len =
  let t = Lazy.force crc_table in
  let c = ref (init lxor 0xffffffff) in
  for i = off to off + len - 1 do
    let idx = (!c lxor Char.code (Bytes.get b i)) land 0xff in
    c := t.(idx) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let crc32_string s =
  let b = Bytes.unsafe_of_string s in
  crc32 b 0 (Bytes.length b)

let adler32 ?(init = 1) b off len =
  let base = 65521 in
  let a = ref (init land 0xffff) and bsum = ref ((init lsr 16) land 0xffff) in
  for i = off to off + len - 1 do
    a := (!a + Char.code (Bytes.get b i)) mod base;
    bsum := (!bsum + !a) mod base
  done;
  (!bsum lsl 16) lor !a
