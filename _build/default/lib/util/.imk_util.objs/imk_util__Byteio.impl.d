lib/util/byteio.ml: Buffer Bytes Char Int32 Int64 Printf String
