lib/util/byteio.mli:
