lib/util/crc.ml: Array Bytes Char Lazy
