lib/util/crc.mli:
