lib/util/table.mli:
