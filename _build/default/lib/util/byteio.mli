(** Little-endian integer codecs over [bytes], plus blit/fill helpers.

    All multi-byte accessors are little-endian, matching the x86_64 ELF and
    boot-protocol structures manipulated throughout the project. Offsets are
    byte offsets; out-of-range accesses raise [Invalid_argument] (the
    underlying stdlib behaviour). *)

val get_u8 : bytes -> int -> int
(** [get_u8 b off] reads one byte as an unsigned integer in [0, 255]. *)

val set_u8 : bytes -> int -> int -> unit
(** [set_u8 b off v] writes the low 8 bits of [v] at [off]. *)

val get_u16 : bytes -> int -> int
(** [get_u16 b off] reads a little-endian unsigned 16-bit integer. *)

val set_u16 : bytes -> int -> int -> unit
(** [set_u16 b off v] writes the low 16 bits of [v] little-endian. *)

val get_u32 : bytes -> int -> int
(** [get_u32 b off] reads a little-endian unsigned 32-bit integer into a
    native [int] (always exact on 64-bit OCaml). *)

val set_u32 : bytes -> int -> int -> unit
(** [set_u32 b off v] writes the low 32 bits of [v] little-endian. *)

val get_i64 : bytes -> int -> int64
(** [get_i64 b off] reads a little-endian 64-bit integer. *)

val set_i64 : bytes -> int -> int64 -> unit
(** [set_i64 b off v] writes [v] little-endian. *)

val get_addr : bytes -> int -> int
(** [get_addr b off] reads a 64-bit little-endian value as a native [int].
    Raises [Invalid_argument] if the value does not fit in 62 bits; guest
    addresses in this project always do. *)

val set_addr : bytes -> int -> int -> unit
(** [set_addr b off v] writes the non-negative native int [v] as a
    little-endian 64-bit value. *)

val get_u32_signed : bytes -> int -> int
(** [get_u32_signed b off] reads a little-endian 32-bit value,
    sign-extended. Used for 32-bit inverse relocations which may hold
    negative displacements. *)

val blit_string : string -> bytes -> int -> unit
(** [blit_string s dst off] copies all of [s] into [dst] at [off]. *)

val sub_string : bytes -> int -> int -> string
(** [sub_string b off len] is [Bytes.sub_string], re-exported for
    qualified-use symmetry. *)

val fill_zero : bytes -> int -> int -> unit
(** [fill_zero b off len] zeroes [len] bytes starting at [off]. *)

val hex_dump : ?max_bytes:int -> bytes -> string
(** [hex_dump b] renders the first [max_bytes] (default 64) bytes of [b] as
    a conventional offset/hex/ASCII dump for debugging. *)
