type t = { files : (string, bytes) Hashtbl.t }

let create () = { files = Hashtbl.create 16 }
let add t ~name data = Hashtbl.replace t.files name data
let find t name =
  match Hashtbl.find_opt t.files name with
  | Some b -> b
  | None -> raise Not_found

let mem t name = Hashtbl.mem t.files name
let size t name = Bytes.length (find t name)
let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.files []
