(** The host's storage: named immutable images (kernels, relocs files,
    rootfs). Reads go through {!Page_cache}, which decides whether a read
    is served from SSD or memory — the cached/uncached distinction at the
    heart of the paper's Figure 4. *)

type t

val create : unit -> t

val add : t -> name:string -> bytes -> unit
(** [add t ~name data] stores an image. Replaces any previous image of the
    same name (and the page cache must be invalidated by the caller —
    {!Page_cache.drop_caches} — as a rewritten file's cached pages are
    stale). *)

val find : t -> string -> bytes
(** [find t name] returns the image contents (shared, do not mutate).
    Raises [Not_found]. *)

val mem : t -> string -> bool
val size : t -> string -> int
val names : t -> string list
