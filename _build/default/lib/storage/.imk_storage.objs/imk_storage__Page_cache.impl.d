lib/storage/page_cache.ml: Disk Hashtbl
