lib/storage/disk.mli:
