lib/storage/page_cache.mli: Disk
