open Imk_memory

exception Reloc_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Reloc_error s)) fmt

let choose_physical rng ~image_memsz ~mem_bytes =
  let lo = Addr.default_phys_load in
  let hi = mem_bytes - image_memsz in
  if hi < lo then lo
  else Imk_entropy.Prng.next_aligned rng ~lo ~hi ~align:Addr.kernel_align

let virtual_bounds ~image_memsz =
  let lo = Addr.kmap_base + Addr.default_phys_load in
  let hi = Addr.kmap_base + Addr.kaslr_max_offset - image_memsz in
  (lo, hi)

let choose_virtual rng ~image_memsz =
  let lo, hi = virtual_bounds ~image_memsz in
  if hi < lo then lo
  else Imk_entropy.Prng.next_aligned rng ~lo ~hi ~align:Addr.kernel_align

let virtual_slots ~image_memsz =
  let lo, hi = virtual_bounds ~image_memsz in
  if hi < lo then 1
  else
    let first = Addr.align_up lo Addr.kernel_align in
    ((hi - first) / Addr.kernel_align) + 1

let delta_new_va ~delta va =
  if not (Addr.is_kernel_va va) then
    fail "relocation target %#x outside the kernel window" va;
  va + delta

let apply ~mem ~relocs ~site_pa ~new_va_of =
  let open Imk_elf.Relocation in
  let patch kind site_va =
      let pa = site_pa site_va in
      match kind with
      | Abs64 ->
          let old_va =
            (* a site pointing at garbage can hold a value outside the
               native-int range; that is a corrupt-relocs symptom, not a
               programming error *)
            try Guest_mem.get_addr mem ~pa
            with Invalid_argument _ ->
              fail "abs64 site %#x holds a non-address value" site_va
          in
          Guest_mem.set_addr mem ~pa (new_va_of old_va)
      | Abs32 ->
          let low = Guest_mem.get_u32 mem ~pa in
          let old_va =
            try Addr.va_of_low32 low
            with Invalid_argument _ ->
              fail "abs32 site %#x holds non-kernel value %#x" site_va low
          in
          let nva = new_va_of old_va in
          if not (Addr.is_kernel_va nva) then
            fail "abs32 relocation at %#x overflows 32 bits" site_va;
          Guest_mem.set_u32 mem ~pa (Addr.low32 nva)
      | Inv32 ->
          let stored = Guest_mem.get_u32 mem ~pa in
          let old_va = Addr.inverse_base - stored in
          if not (Addr.is_kernel_va old_va) then
            fail "inv32 site %#x holds non-kernel value %#x" site_va stored;
          let nva = new_va_of old_va in
          let stored' = Addr.inverse_base - nva in
          if stored' < 0 || stored' > 0xffffffff then
            fail "inv32 relocation at %#x underflows" site_va;
          Guest_mem.set_u32 mem ~pa stored'
  in
  iter relocs ~f:(fun kind site_va ->
      try patch kind site_va
      with Guest_mem.Fault m ->
        fail "relocation site %#x outside the loaded image: %s" site_va m)
