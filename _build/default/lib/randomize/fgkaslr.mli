(** Function-granular KASLR: section shuffling, displacement mapping and
    table fixups.

    Follows the in-kernel FGKASLR implementation the paper adapts (§3.2,
    §4.3): function sections are shuffled and re-laid-out contiguously,
    every relocation consults a binary search over the moved sections to
    displace values that point into them, and the address-ordered tables
    (kallsyms, the exception table, optionally the ORC unwind table) are
    rewritten and re-sorted. The {!plan} is the shared data structure; the
    monitor and the bootstrap loader differ only in how they move the
    bytes and what they charge for it. *)

type plan = {
  count : int;
  order : int array;
      (** shuffled permutation: [order.(k)] is the original index of the
          section placed k-th *)
  old_va : int array;  (** per original index *)
  size : int array;  (** per original index *)
  new_va : int array;  (** per original index *)
  sorted_old : int array;
      (** original indices sorted by [old_va] — the binary-search key the
          relocation fixup walks *)
}

val make_plan :
  Imk_entropy.Prng.t -> sections:(int * int) array -> text_base:int -> plan
(** [make_plan rng ~sections ~text_base] shuffles the [(old_va, size)]
    sections and assigns new VAs contiguously (16-aligned) from
    [text_base]. Raises [Invalid_argument] if sections overlap or are
    unsorted — symptoms of a corrupt section table. *)

val displace : plan -> int -> int
(** [displace plan va] maps a link-time VA to its post-shuffle VA: VAs
    inside a moved section get that section's displacement (found by
    binary search); all other VAs are unchanged. The global KASLR delta is
    {e not} included — compose with {!Kaslr.delta_new_va}. *)

val displacement_pairs : plan -> (int * int * int) array
(** [displacement_pairs plan] lists [(old_va, new_va, size)] per section
    in placement order — the "setup data" blob a monitor can expose to the
    guest for deferred kallsyms fixup (§4.3 ablation). *)

val plan_of_pairs : (int * int * int) array -> plan
(** [plan_of_pairs pairs] reconstructs a plan from
    {!displacement_pairs} output — how the guest's deferred kallsyms
    fixup rebuilds the displacement map from the setup-data blob. *)

val identity_plan : sections:(int * int) array -> text_base:int -> plan
(** [identity_plan] builds a no-shuffle plan (every displacement zero) —
    what an fgkaslr-built kernel does when randomization is disabled on
    the command line: it still parses sections, but nothing moves. *)

(** {1 Table fixups} — operate on the loaded tables in guest memory.
    [pa] is the guest-physical address of the section; entries use the
    encodings documented in {!Imk_kernel.Image}. *)

val fixup_kallsyms : Imk_memory.Guest_mem.t -> pa:int -> plan -> unit
(** Rewrite each symbol's base-relative offset by its function's
    displacement, then re-sort by offset. Raises [Kaslr.Reloc_error] on a
    malformed table. *)

val fixup_extab : Imk_memory.Guest_mem.t -> pa:int -> extab_va:int -> plan -> unit
(** Adjust the self-relative fault/handler displacements by the moved
    functions' displacements and re-sort by fault address. [extab_va] is
    the table's current VA (needed because entries are self-relative). *)

val fixup_orc : Imk_memory.Guest_mem.t -> pa:int -> orc_va:int -> plan -> unit
(** Same treatment for the ORC unwind table. The paper's in-monitor
    implementation deliberately omits this (§4.3); the ablation bench
    measures what it would cost. *)
