lib/randomize/fgkaslr.ml: Addr Array Guest_mem Imk_entropy Imk_kernel Imk_memory Kaslr
