lib/randomize/loadelf.mli: Fgkaslr Imk_elf Imk_memory
