lib/randomize/kaslr.ml: Addr Guest_mem Imk_elf Imk_entropy Imk_memory Printf
