lib/randomize/kaslr.mli: Imk_elf Imk_entropy Imk_memory
