lib/randomize/fgkaslr.mli: Imk_entropy Imk_memory
