lib/randomize/loadelf.ml: Addr Array Fgkaslr Guest_mem Imk_elf Imk_memory List Printf
