type t = { mutable ns : int }

let create () = { ns = 0 }
let now t = t.ns

let advance t d =
  if d < 0 then invalid_arg "Clock.advance: negative duration";
  t.ns <- t.ns + d

let reset t = t.ns <- 0
let elapsed_since t mark = t.ns - mark
