type phase = In_monitor | Bootstrap_setup | Decompression | Linux_boot

let phase_name = function
  | In_monitor -> "In-Monitor"
  | Bootstrap_setup -> "Bootstrap Setup"
  | Decompression -> "Decompression"
  | Linux_boot -> "Linux Boot"

let all_phases = [ In_monitor; Bootstrap_setup; Decompression; Linux_boot ]

type span = { label : string; phase : phase; start_ns : int; stop_ns : int }

type t = {
  clk : Clock.t;
  mutable recorded : span list; (* reverse chronological by open time *)
  mutable depth_by_phase : (phase * int ref) list;
}

let create clk =
  {
    clk;
    recorded = [];
    depth_by_phase = List.map (fun p -> (p, ref 0)) all_phases;
  }

let clock t = t.clk

let depth t phase = List.assoc phase t.depth_by_phase

let with_span t phase label f =
  let d = depth t phase in
  let top_level = !d = 0 in
  incr d;
  let start_ns = Clock.now t.clk in
  let record () =
    decr d;
    let stop_ns = Clock.now t.clk in
    (* Mark nested same-phase spans with a depth tag so phase_total only
       counts the top-level ones. *)
    let label = if top_level then label else "+" ^ label in
    t.recorded <- { label; phase; start_ns; stop_ns } :: t.recorded
  in
  match f () with
  | v ->
      record ();
      v
  | exception e ->
      record ();
      raise e

let tracepoint t phase label =
  let now = Clock.now t.clk in
  t.recorded <- { label; phase; start_ns = now; stop_ns = now } :: t.recorded

let spans t = List.rev t.recorded

let is_top_level s = String.length s.label = 0 || s.label.[0] <> '+'

let phase_total t p =
  List.fold_left
    (fun acc s ->
      if s.phase = p && is_top_level s then acc + (s.stop_ns - s.start_ns)
      else acc)
    0 t.recorded

let breakdown t = List.map (fun p -> (p, phase_total t p)) all_phases
let total t = List.fold_left (fun acc (_, d) -> acc + d) 0 (breakdown t)

let reset t =
  t.recorded <- [];
  List.iter (fun (_, d) -> d := 0) t.depth_by_phase;
  Clock.reset t.clk

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (p, ns) ->
      Format.fprintf ppf "%-16s %a@," (phase_name p) Imk_util.Units.pp_ms ns)
    (breakdown t);
  Format.fprintf ppf "%-16s %a@]" "Total" Imk_util.Units.pp_ms (total t)
