type t = {
  trace : Trace.t;
  cm : Cost_model.t;
  jitter : Imk_entropy.Prng.t option;
}

let create ?jitter trace cm = { trace; cm; jitter }
let trace t = t.trace
let model t = t.cm
let clock t = Trace.clock t.trace
let span t phase label f = Trace.with_span t.trace phase label f

let pay t ns =
  let ns =
    match t.jitter with
    | None -> ns
    | Some rng -> Cost_model.jitter t.cm rng ns
  in
  Clock.advance (Trace.clock t.trace) ns

let pay_span t phase label ns = span t phase label (fun () -> pay t ns)
