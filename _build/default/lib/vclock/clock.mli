(** The virtual clock.

    Every simulated boot charges its work to one of these clocks instead of
    reading wall time, which makes experiments deterministic and
    machine-independent (DESIGN.md §4, "virtual time, real work"). Time is
    an integer count of virtual nanoseconds since [create]/[reset]. *)

type t

val create : unit -> t
(** [create ()] is a clock at time 0. *)

val now : t -> int
(** [now t] is the current virtual time in nanoseconds. *)

val advance : t -> int -> unit
(** [advance t ns] moves the clock forward. Raises [Invalid_argument] on a
    negative amount — simulated operations never take negative time, and a
    negative cost always indicates a modelling bug. *)

val reset : t -> unit
(** [reset t] rewinds the clock to 0 (used between repeated boots of the
    same VM configuration). *)

val elapsed_since : t -> int -> int
(** [elapsed_since t mark] is [now t - mark]. *)
