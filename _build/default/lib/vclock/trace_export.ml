let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json ?(process_name = "microvm-boot") trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  let emit s =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf s
  in
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
        \"args\":{\"name\":\"%s\"}}"
       (escape process_name));
  List.iter
    (fun (s : Trace.span) ->
      let label =
        if String.length s.label > 0 && s.label.[0] = '+' then
          String.sub s.label 1 (String.length s.label - 1)
        else s.label
      in
      let ts_us = float_of_int s.start_ns /. 1000. in
      let dur_us = float_of_int (s.stop_ns - s.start_ns) /. 1000. in
      if s.stop_ns = s.start_ns then
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\
              \"s\":\"t\",\"cat\":\"%s\"}"
             (escape label) ts_us
             (escape (Trace.phase_name s.phase)))
      else
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
              \"pid\":1,\"tid\":1,\"cat\":\"%s\"}"
             (escape label) ts_us dur_us
             (escape (Trace.phase_name s.phase))))
    (Trace.spans trace);
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let write_file ?process_name trace ~path =
  let oc = open_out path in
  output_string oc (to_chrome_json ?process_name trace);
  close_out oc
