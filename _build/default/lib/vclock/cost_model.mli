(** Calibrated cost model for the simulated testbed.

    The paper's experiments ran on an Intel i7-4790 @ 3.6 GHz with DDR3-1600
    and an SSD reading at up to 560 MB/s (§5.1). The constants in
    {!default} are calibrated to that machine so that the reproduced
    figures land in the paper's ranges; EXPERIMENTS.md records the
    paper-vs-measured comparison. All cost functions return virtual
    nanoseconds and never touch a clock themselves — callers charge the
    result to a {!Clock.t}, usually under a {!Trace} span.

    Byte counts passed here are *modelled* sizes: synthetic kernel images
    are built at a reduced scale (DESIGN.md §4.3) and scaled back up before
    costing, so virtual times reflect the paper's 20–45 MB kernels. *)

type t = {
  cold_read_bps : float;
      (** SSD sequential read (cold page cache): 500 MB/s effective. *)
  cached_read_bps : float;
      (** page-cache read into guest memory: host memcpy-limited, 8 GB/s. *)
  host_memcpy_bps : float;  (** monitor-side large memcpy: 8 GB/s. *)
  guest_memcpy_bps : float;
      (** bootstrap-loader memcpy; early boot runs with cold caches,
          4 KiB pages and no prefetch tuning: 2.5 GB/s. *)
  zero_bps : float;  (** host-side memset-to-zero: 10 GB/s. *)
  early_zero_bps : float;
      (** zeroing during guest early boot (loader heap/bss/stack):
          2.5 GB/s. *)
  pte_write_ns : float;
      (** writing one early page-table entry in the loader, ~20 ns —
          dominated by the cold-cache store, not the arithmetic. *)
  loader_fixed_ns : float;
      (** mode transitions, GDT/IDT setup, trampolines: the
          size-independent tax of entering the bootstrap loader at all,
          ~2.5 ms. *)
  reloc_ns_monitor : float;
      (** applying one relocation entry in the monitor: random-access
          read-modify-write, ~12 ns. *)
  reloc_ns_guest : float;
      (** same work in the bootstrap loader; cold caches/TLB, ~16 ns. *)
  reloc_search_step_ns : float;
      (** one step of the FGKASLR binary search over shuffled sections
          (paper §3.2), ~4 ns per comparison. *)
  section_shuffle_ns : float;
      (** per-section bookkeeping when shuffling and re-laying-out
          function sections — header rewrite, address assignment,
          permutation bookkeeping — excluding the byte copies: ~800 ns. *)
  symbol_fixup_ns : float;
      (** per-symbol adjustment when rewriting the symbol table, ~90 ns. *)
  extab_fixup_ns : float;  (** per exception-table entry fixup, ~60 ns. *)
  kallsyms_ns_per_sym : float;
      (** per-symbol cost of the kallsyms sort+rewrite the paper measures
          at 22% of boot and proposes to defer (§4.3), ~600 ns. *)
  elf_parse_base_ns : float;  (** fixed ELF header/phdr parse cost. *)
  elf_parse_section_ns : float;  (** per section-header parse cost. *)
  page_table_ns_per_mib : float;
      (** building identity-mapped early page tables per MiB covered. *)
  vmm_entry_ns : float;
      (** KVM vcpu setup + VM entry, charged once per boot: ~300 us. *)
}

val default : t
(** Calibration for the paper's i7-4790 testbed. *)

(** {1 Cost helpers} — all take modelled byte or entry counts. *)

val read_cost : t -> cached:bool -> int -> int
(** [read_cost t ~cached bytes] is the cost of reading an image from
    storage into guest memory. *)

val memcpy_cost : t -> in_guest:bool -> int -> int
(** [memcpy_cost t ~in_guest bytes] is a bulk copy, at guest or host
    rate. *)

val zero_cost : t -> int -> int
(** [zero_cost t bytes] is zero-filling (bss, boot heap, stack). *)

val reloc_cost : t -> in_guest:bool -> entries:int -> int
(** [reloc_cost t ~in_guest ~entries] is plain (coarse KASLR) relocation
    handling for [entries] table entries. *)

val fg_reloc_cost : t -> in_guest:bool -> entries:int -> sections:int -> int
(** [fg_reloc_cost t ~in_guest ~entries ~sections] adds the per-entry
    binary search over [sections] shuffled function sections to
    {!reloc_cost} (paper §3.2). *)

val elf_parse_cost : t -> sections:int -> int
(** [elf_parse_cost t ~sections] is parsing an ELF with that many section
    headers. *)

val decompress_cost : t -> codec:string -> out_bytes:int -> int
(** [decompress_cost t ~codec ~out_bytes] charges decompression at the
    codec's output-side rate. Codec names follow
    [Imk_compress.Codec.name]: "none" is free (a plain copy is charged
    separately by the caller); rates for lz4/lzo/gzip/bzip2/xz/lzma follow
    their published relative speeds (lz4 ≈ 2 GB/s … lzma ≈ 70 MB/s).
    Unknown codecs raise [Invalid_argument]. *)

val decompress_rate_bps : codec:string -> float
(** [decompress_rate_bps ~codec] exposes the rate table used by
    {!decompress_cost}. *)

val jitter : t -> Imk_entropy.Prng.t -> int -> int
(** [jitter t rng ns] perturbs a duration with ±1% gaussian measurement
    noise plus a small absolute term, clamped to stay positive — the
    run-to-run variance that produces the paper's min/max error bars. *)
