lib/vclock/trace.mli: Clock Format
