lib/vclock/trace.ml: Clock Format Imk_util List String
