lib/vclock/cost_model.mli: Imk_entropy
