lib/vclock/charge.ml: Clock Cost_model Imk_entropy Trace
