lib/vclock/trace_export.mli: Trace
