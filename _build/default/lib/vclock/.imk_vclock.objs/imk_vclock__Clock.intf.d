lib/vclock/clock.mli:
