lib/vclock/charge.mli: Clock Cost_model Imk_entropy Trace
