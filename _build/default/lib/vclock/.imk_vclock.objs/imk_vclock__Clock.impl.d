lib/vclock/clock.ml:
