lib/vclock/cost_model.ml: Float Imk_entropy List
