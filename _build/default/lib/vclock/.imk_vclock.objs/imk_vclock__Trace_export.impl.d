lib/vclock/trace_export.ml: Buffer Char List Printf String Trace
