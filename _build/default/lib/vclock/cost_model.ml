type t = {
  cold_read_bps : float;
  cached_read_bps : float;
  host_memcpy_bps : float;
  guest_memcpy_bps : float;
  zero_bps : float;
  early_zero_bps : float;
  pte_write_ns : float;
  loader_fixed_ns : float;
  reloc_ns_monitor : float;
  reloc_ns_guest : float;
  reloc_search_step_ns : float;
  section_shuffle_ns : float;
  symbol_fixup_ns : float;
  extab_fixup_ns : float;
  kallsyms_ns_per_sym : float;
  elf_parse_base_ns : float;
  elf_parse_section_ns : float;
  page_table_ns_per_mib : float;
  vmm_entry_ns : float;
}

let default =
  {
    cold_read_bps = 500e6;
    cached_read_bps = 8e9;
    host_memcpy_bps = 8e9;
    guest_memcpy_bps = 2.5e9;
    zero_bps = 10e9;
    early_zero_bps = 2.5e9;
    pte_write_ns = 20.;
    loader_fixed_ns = 2_500_000.;
    reloc_ns_monitor = 12.;
    reloc_ns_guest = 16.;
    reloc_search_step_ns = 4.;
    section_shuffle_ns = 800.;
    symbol_fixup_ns = 90.;
    extab_fixup_ns = 60.;
    kallsyms_ns_per_sym = 600.;
    elf_parse_base_ns = 12_000.;
    elf_parse_section_ns = 35.;
    page_table_ns_per_mib = 450.;
    vmm_entry_ns = 300_000.;
  }

let ns_of_float f = int_of_float (Float.round (Float.max 0. f))

let bytes_at_rate bytes bps = ns_of_float (float_of_int bytes /. bps *. 1e9)

let read_cost t ~cached bytes =
  bytes_at_rate bytes (if cached then t.cached_read_bps else t.cold_read_bps)

let memcpy_cost t ~in_guest bytes =
  bytes_at_rate bytes (if in_guest then t.guest_memcpy_bps else t.host_memcpy_bps)

let zero_cost t bytes = bytes_at_rate bytes t.zero_bps

let reloc_cost t ~in_guest ~entries =
  let per = if in_guest then t.reloc_ns_guest else t.reloc_ns_monitor in
  ns_of_float (float_of_int entries *. per)

let fg_reloc_cost t ~in_guest ~entries ~sections =
  let steps =
    if sections <= 1 then 1.
    else Float.round (log (float_of_int sections) /. log 2.)
  in
  let search = float_of_int entries *. steps *. t.reloc_search_step_ns in
  reloc_cost t ~in_guest ~entries + ns_of_float search

let elf_parse_cost t ~sections =
  ns_of_float (t.elf_parse_base_ns +. (float_of_int sections *. t.elf_parse_section_ns))

(* Output-side decompression rates, bytes of *decompressed* data per
   second. Relative order follows published benchmarks (lzbench on
   Haswell-class cores): lz4 is the fastest decompressor, lzma the
   slowest; this ordering is what makes LZ4 win Figure 3. *)
let rate_table =
  [
    ("none", infinity);
    ("lz4", 2.0e9);
    ("lzo", 8.0e8);
    ("gzip", 3.0e8);
    ("bzip2", 1.0e8);
    ("xz", 8.0e7);
    ("lzma", 7.0e7);
  ]

let decompress_rate_bps ~codec =
  match List.assoc_opt codec rate_table with
  | Some r -> r
  | None -> invalid_arg ("Cost_model.decompress_rate_bps: unknown codec " ^ codec)

let decompress_cost t ~codec ~out_bytes =
  ignore t;
  let rate = decompress_rate_bps ~codec in
  if rate = infinity then 0 else bytes_at_rate out_bytes rate

let jitter _t rng ns =
  let noisy =
    Imk_entropy.Prng.gaussian rng ~mean:(float_of_int ns)
      ~stddev:((float_of_int ns *. 0.01) +. 20_000.)
  in
  ns_of_float (Float.max (float_of_int ns *. 0.9) noisy)
