(** Trace export in Chrome tracing format.

    The paper's methodology visualizes per-phase timelines from perf
    traces; this produces the equivalent artifact for simulated boots: a
    JSON array loadable by chrome://tracing or Perfetto, one complete
    event per span, microsecond timestamps, phases as categories. *)

val to_chrome_json : ?process_name:string -> Trace.t -> string
(** [to_chrome_json trace] renders every span (including nested ones) as
    a Chrome "X" (complete) event. Zero-length tracepoints become "i"
    (instant) events. *)

val write_file : ?process_name:string -> Trace.t -> path:string -> unit
(** [write_file trace ~path] writes {!to_chrome_json} output. *)
