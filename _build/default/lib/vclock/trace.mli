(** Perf-style span tracing of simulated boots.

    The paper instruments boots with port-IO tracepoints captured by perf
    and buckets time into four phases (§5.1): time in the monitor, time in
    the bootstrap loader before decompression, decompression itself, and
    the Linux boot proper. This module reproduces that methodology: code
    under simulation opens spans against a {!Clock.t}, and reports read the
    per-phase breakdown. *)

type phase =
  | In_monitor  (** inside the VMM before entering guest context *)
  | Bootstrap_setup  (** bootstrap loader work other than decompression *)
  | Decompression  (** kernel payload decompression *)
  | Linux_boot  (** from the jump to [startup_64] until init runs *)

val phase_name : phase -> string
(** [phase_name p] is the label used in reports ("In-Monitor", ...). *)

val all_phases : phase list
(** The four phases in presentation order. *)

type span = { label : string; phase : phase; start_ns : int; stop_ns : int }

type t

val create : Clock.t -> t
(** [create clock] is an empty trace recording against [clock]. *)

val clock : t -> Clock.t
(** [clock t] is the clock this trace records against. *)

val with_span : t -> phase -> string -> (unit -> 'a) -> 'a
(** [with_span t phase label f] runs [f], recording a span from the clock
    time at entry to the time at exit. Spans may nest; only leaf charging
    via {!Clock.advance} moves time, so nesting does not double-count as
    long as callers sum spans of a single phase level (reports use
    {!breakdown}, which relies on the convention that phases do not
    nest within each other). Exceptions propagate; the span is still
    recorded. *)

val tracepoint : t -> phase -> string -> unit
(** [tracepoint t phase label] records a zero-length marker, mirroring the
    paper's port-IO write tracepoints. *)

val spans : t -> span list
(** [spans t] lists recorded spans in chronological order of opening. *)

val phase_total : t -> phase -> int
(** [phase_total t p] sums the duration of top-level spans of phase [p].
    Nested spans of the same phase are not double-counted. *)

val breakdown : t -> (phase * int) list
(** [breakdown t] is [phase_total] for each of {!all_phases}, in order. *)

val total : t -> int
(** [total t] is the overall traced duration (sum of the breakdown). *)

val reset : t -> unit
(** [reset t] clears the spans and resets the underlying clock. *)

val pp : Format.formatter -> t -> unit
(** Render the breakdown for debugging / CLI output. *)
