(** x86_64 guest address-space constants and helpers.

    These are the values the paper's §4.3 calls out as inputs the monitor
    needs: [CONFIG_PHYSICAL_START] / [CONFIG_PHYSICAL_ALIGN] from the
    kernel configuration and [__START_KERNEL_map] / [KERNEL_IMAGE_SIZE]
    from the kernel headers. One deliberate substitution: Linux's
    [__START_KERNEL_map] is [0xffffffff80000000], which does not fit
    OCaml's 63-bit native [int]; the simulated canonical base
    [0x3fffffff80000000] keeps the {e low 32 bits} identical
    ([0x80000000]), which is the part 32-bit relocation arithmetic
    depends on, while fitting comfortably in a native int. All
    relocation and randomization behaviour is unchanged. *)

val kmap_base : int
(** Simulated [__START_KERNEL_map]: [0x3fffffff80000000]. *)

val default_phys_load : int
(** [CONFIG_PHYSICAL_START] = 16 MiB — the paper's "default kernel load
    address of 16 MB". *)

val kernel_align : int
(** [CONFIG_PHYSICAL_ALIGN] / [MIN_KERNEL_ALIGN] = 2 MiB. *)

val kaslr_max_offset : int
(** 1 GiB — the maximum virtual offset, "to avoid the fixmap" (§4.3). *)

val link_base : int
(** link-time virtual address of the kernel image:
    [kmap_base + default_phys_load]. *)

val inverse_base : int
(** reference point for 32-bit inverse relocations:
    [kmap_base + 2 GiB]. Sites store [(inverse_base - target) land
    0xffffffff]; randomizing by [delta] {e subtracts} [delta]. *)

val is_kernel_va : int -> bool
(** [is_kernel_va va] checks [va] lies within the randomizable kernel
    window [kmap_base, kmap_base + kaslr_max_offset + image headroom). *)

val low32 : int -> int
(** [low32 va] is [va land 0xffffffff] — the value a 32-bit absolute
    relocation site stores. *)

val va_of_low32 : int -> int
(** [va_of_low32 v] reconstructs the full virtual address from its low 32
    bits, exploiting that every kernel VA shares [kmap_base]'s upper bits
    — exactly why Linux can use 32-bit relocations for kernel text.
    Raises [Invalid_argument] if [v] is not in the kernel window's low-32
    image. *)

val is_aligned : int -> int -> bool
(** [is_aligned v a]. *)

val align_up : int -> int -> int
val align_down : int -> int -> int
