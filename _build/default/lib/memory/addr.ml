let kmap_base = 0x3fffffff80000000
let default_phys_load = 0x1000000
let kernel_align = 0x200000
let kaslr_max_offset = 0x40000000
let link_base = kmap_base + default_phys_load
let inverse_base = kmap_base + 0x80000000

let is_kernel_va va =
  va >= kmap_base && va < kmap_base + kaslr_max_offset + 0x10000000

let low32 va = va land 0xffffffff

let va_of_low32 v =
  if v < 0 || v > 0xffffffff then invalid_arg "Addr.va_of_low32: not a 32-bit value";
  let va = (kmap_base land lnot 0xffffffff) lor v in
  if not (is_kernel_va va) then
    invalid_arg "Addr.va_of_low32: outside the kernel window";
  va

let is_aligned v a = v mod a = 0
let align_up v a = (v + a - 1) / a * a
let align_down v a = v / a * a
