type t = { data : bytes }

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

let create ~size =
  if size <= 0 then invalid_arg "Guest_mem.create: non-positive size";
  { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let check t pa len what =
  if pa < 0 || len < 0 || pa + len > Bytes.length t.data then
    fault "%s at %#x+%d outside guest memory of %d bytes" what pa len
      (Bytes.length t.data)

let write_bytes t ~pa b =
  check t pa (Bytes.length b) "write";
  Bytes.blit b 0 t.data pa (Bytes.length b)

let write_sub t ~pa ~src ~src_off ~len =
  check t pa len "write";
  if src_off < 0 || src_off + len > Bytes.length src then
    invalid_arg "Guest_mem.write_sub: source range";
  Bytes.blit src src_off t.data pa len

let read_bytes t ~pa ~len =
  check t pa len "read";
  Bytes.sub t.data pa len

let copy_within t ~src ~dst ~len =
  check t src len "copy source";
  check t dst len "copy destination";
  Bytes.blit t.data src t.data dst len

let zero t ~pa ~len =
  check t pa len "zero";
  Bytes.fill t.data pa len '\000'

let get_u8 t ~pa =
  check t pa 1 "read u8";
  Imk_util.Byteio.get_u8 t.data pa

let get_u32 t ~pa =
  check t pa 4 "read u32";
  Imk_util.Byteio.get_u32 t.data pa

let set_u32 t ~pa v =
  check t pa 4 "write u32";
  Imk_util.Byteio.set_u32 t.data pa v

let get_u32_signed t ~pa =
  check t pa 4 "read u32";
  Imk_util.Byteio.get_u32_signed t.data pa

let get_addr t ~pa =
  check t pa 8 "read u64";
  Imk_util.Byteio.get_addr t.data pa

let set_addr t ~pa v =
  check t pa 8 "write u64";
  Imk_util.Byteio.set_addr t.data pa v

let get_i64 t ~pa =
  check t pa 8 "read i64";
  Imk_util.Byteio.get_i64 t.data pa

let raw t = t.data
