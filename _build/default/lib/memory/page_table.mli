(** Early boot page-table construction (simulated x86_64 4-level).

    Both principals build page tables before jumping to 64-bit code: the
    bootstrap loader constructs its own identity map as part of its setup
    (one of the costs the paper attributes to Bootstrap Setup), while in a
    direct boot the monitor establishes the initial map before VM entry.
    The model computes the real table geometry — how many PML4/PDPT/PD/PT
    pages an identity map of a given span needs at a given page size — so
    the byte volume zeroed and written is faithful. *)

type page_size = Four_k | Two_m | One_g

val page_bytes : page_size -> int

type t = {
  page_size : page_size;
  covered_bytes : int;
  pml4_pages : int;
  pdpt_pages : int;
  pd_pages : int;
  pt_pages : int;
}

val identity_map : covered_bytes:int -> page_size:page_size -> t
(** [identity_map ~covered_bytes ~page_size] computes the table geometry
    for an identity mapping of [0, covered_bytes). Raises
    [Invalid_argument] on a non-positive span. *)

val total_pages : t -> int
(** [total_pages t] is the number of 4 KiB table pages that must be
    allocated and zeroed. *)

val table_bytes : t -> int
(** [table_bytes t] is [total_pages t * 4096] — input to the zeroing
    cost. *)

val entries : t -> int
(** [entries t] is the number of page-table entries written. *)
