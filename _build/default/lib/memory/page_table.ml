type page_size = Four_k | Two_m | One_g

let page_bytes = function
  | Four_k -> 4096
  | Two_m -> 2 * 1024 * 1024
  | One_g -> 1024 * 1024 * 1024

type t = {
  page_size : page_size;
  covered_bytes : int;
  pml4_pages : int;
  pdpt_pages : int;
  pd_pages : int;
  pt_pages : int;
}

let div_up a b = (a + b - 1) / b

let identity_map ~covered_bytes ~page_size =
  if covered_bytes <= 0 then
    invalid_arg "Page_table.identity_map: non-positive span";
  (* each table page holds 512 entries; leaf level depends on page size *)
  let leaf = page_bytes page_size in
  let leaves = div_up covered_bytes leaf in
  match page_size with
  | One_g ->
      let pdpt = div_up leaves 512 in
      {
        page_size;
        covered_bytes;
        pml4_pages = 1;
        pdpt_pages = pdpt;
        pd_pages = 0;
        pt_pages = 0;
      }
  | Two_m ->
      let pd = div_up leaves 512 in
      let pdpt = div_up pd 512 in
      {
        page_size;
        covered_bytes;
        pml4_pages = 1;
        pdpt_pages = pdpt;
        pd_pages = pd;
        pt_pages = 0;
      }
  | Four_k ->
      let pt = div_up leaves 512 in
      let pd = div_up pt 512 in
      let pdpt = div_up pd 512 in
      {
        page_size;
        covered_bytes;
        pml4_pages = 1;
        pdpt_pages = pdpt;
        pd_pages = pd;
        pt_pages = pt;
      }

let total_pages t = t.pml4_pages + t.pdpt_pages + t.pd_pages + t.pt_pages
let table_bytes t = total_pages t * 4096

let entries t =
  let leaves = div_up t.covered_bytes (page_bytes t.page_size) in
  (* one entry per leaf plus one per non-root table page pointer *)
  leaves + t.pdpt_pages + t.pd_pages + t.pt_pages
