lib/memory/addr.ml:
