lib/memory/guest_mem.ml: Bytes Imk_util Printf
