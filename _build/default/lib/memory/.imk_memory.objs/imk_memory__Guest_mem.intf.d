lib/memory/guest_mem.mli:
