lib/memory/page_table.mli:
