lib/memory/addr.mli:
