lib/memory/page_table.ml:
