lib/elf/parser.mli: Types
