lib/elf/note.mli:
