lib/elf/writer.ml: Array Buffer Byteio Bytes Hashtbl Imk_util Layout List Types
