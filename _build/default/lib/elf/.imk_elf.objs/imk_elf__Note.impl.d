lib/elf/note.ml: Byteio Bytes Imk_util String
