lib/elf/layout.mli: Types
