lib/elf/builder.ml: Array Bytes Hashtbl Layout List Types
