lib/elf/relocation.ml: Array Bytes Imk_util
