lib/elf/types.mli: Format
