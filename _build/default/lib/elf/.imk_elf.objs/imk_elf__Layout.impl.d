lib/elf/layout.ml: Array List Option Types
