lib/elf/parser.ml: Array Byteio Bytes Hashtbl Imk_util List Types
