lib/elf/relocation.mli:
