lib/elf/types.ml: Array Format String
