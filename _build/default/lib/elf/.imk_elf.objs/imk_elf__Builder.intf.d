lib/elf/builder.mli: Types
