let align_up v a =
  if a <= 0 then invalid_arg "Layout.align_up: non-positive alignment";
  (v + a - 1) / a * a

let assign_offsets ~first_offset sections =
  let pos = ref first_offset in
  Array.map
    (fun (s : Types.section) ->
      let align = max 1 s.addralign in
      let off = align_up !pos align in
      if s.sh_type <> Types.sht_nobits then pos := off + s.size;
      { s with offset = off })
    sections

let header_end ~phnum = Types.ehdr_size + (phnum * Types.phdr_size)

let file_end sections =
  Array.fold_left
    (fun acc (s : Types.section) ->
      if s.sh_type = Types.sht_nobits then acc else max acc (s.offset + s.size))
    0 sections

let flags_of_section (s : Types.section) =
  let f = ref Types.pf_r in
  if s.flags land Types.shf_write <> 0 then f := !f lor Types.pf_w;
  if s.flags land Types.shf_execinstr <> 0 then f := !f lor Types.pf_x;
  !f

let load_segments_of_sections sections ~phys_of_vaddr =
  let allocs =
    Array.to_list sections
    |> List.filter (fun (s : Types.section) -> s.flags land Types.shf_alloc <> 0)
  in
  let page = 4096 in
  let close_run run =
    match run with
    | [] -> None
    | first :: _ ->
        let last = List.nth run (List.length run - 1) in
        let first : Types.section = first and last : Types.section = last in
        let file_extent =
          List.fold_left
            (fun acc (s : Types.section) ->
              if s.sh_type = Types.sht_nobits then acc
              else max acc (s.offset + s.size))
            first.offset run
        in
        Some
          {
            Types.p_type = Types.pt_load;
            p_flags = flags_of_section first;
            p_offset = first.offset;
            p_vaddr = first.addr;
            p_paddr = phys_of_vaddr first.addr;
            p_filesz = file_extent - first.offset;
            p_memsz = last.addr + last.size - first.addr;
            p_align = page;
          }
  in
  let rec group acc run = function
    | [] -> List.rev (Option.to_list (close_run (List.rev run)) @ acc)
    | s :: rest -> (
        match run with
        | [] -> group acc [ s ] rest
        | prev :: _ ->
            let prev : Types.section = prev in
            let contiguous =
              s.Types.addr >= prev.addr + prev.size
              && s.Types.addr <= align_up (prev.addr + prev.size) page
            in
            let same_flags = flags_of_section s = flags_of_section prev in
            (* NOBITS must terminate a run: file bytes stop there *)
            let prev_nobits = prev.sh_type = Types.sht_nobits in
            if contiguous && same_flags && not prev_nobits then
              group acc (s :: run) rest
            else group (Option.to_list (close_run (List.rev run)) @ acc) [ s ] rest)
  in
  group [] [] allocs
