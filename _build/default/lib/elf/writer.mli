(** ELF64 serialization.

    Produces a real ELF64 file image: header, program headers, section
    data at the offsets recorded in each section, then the symbol table,
    its string table, the section-name string table and the section
    header table. {!Parser.parse} inverts it. *)

val write : Types.t -> bytes
(** [write t] serializes the image. Section [offset] fields must already
    be assigned (see {!Layout.assign_offsets}) and must not collide with
    the header area or each other; [Invalid_argument] is raised
    otherwise. *)
