type t = {
  mutable sections : Types.section list; (* reversed *)
  mutable symbols : Types.symbol list; (* reversed *)
  mutable entry : int;
  mutable finalized : bool;
  section_index : (string, int) Hashtbl.t;
  mutable nsections : int;
}

let create () =
  {
    sections = [];
    symbols = [];
    entry = 0;
    finalized = false;
    section_index = Hashtbl.create 64;
    nsections = 0;
  }

let add_section t ~name ~sh_type ~flags ~addr ?(addralign = 16) ?(entsize = 0)
    ?mem_size data =
  if t.finalized then invalid_arg "Elf.Builder: already finalized";
  if Hashtbl.mem t.section_index name then
    invalid_arg ("Elf.Builder: duplicate section " ^ name);
  let size =
    match mem_size with
    | Some s ->
        if sh_type <> Types.sht_nobits then
          invalid_arg "Elf.Builder: mem_size only valid for SHT_NOBITS";
        if Bytes.length data <> 0 then
          invalid_arg "Elf.Builder: NOBITS sections carry no data";
        s
    | None -> Bytes.length data
  in
  let s =
    {
      Types.name;
      sh_type;
      flags;
      addr;
      offset = 0;
      size;
      addralign;
      entsize;
      data;
    }
  in
  Hashtbl.add t.section_index name t.nsections;
  t.nsections <- t.nsections + 1;
  t.sections <- s :: t.sections

let add_symbol t ~name ~value ~size ~sym_type ~section =
  match Hashtbl.find_opt t.section_index section with
  | None -> invalid_arg ("Elf.Builder: unknown section " ^ section)
  | Some shndx ->
      t.symbols <-
        { Types.sym_name = name; value; sym_size = size; sym_type; shndx }
        :: t.symbols

let set_entry t e = t.entry <- e

let finalize t ~phys_of_vaddr =
  if t.finalized then invalid_arg "Elf.Builder: already finalized";
  t.finalized <- true;
  let sections = Array.of_list (List.rev t.sections) in
  (* check allocatable vaddr monotonicity before deriving segments *)
  let prev = ref (-1) in
  Array.iter
    (fun (s : Types.section) ->
      if s.flags land Types.shf_alloc <> 0 then begin
        if s.addr < !prev then
          invalid_arg
            ("Elf.Builder: allocatable sections out of address order at " ^ s.name);
        prev := s.addr + s.size
      end)
    sections;
  (* provisional segment count to place data after the program headers:
     derive twice, first with a generous guess *)
  let guess_segments =
    Layout.load_segments_of_sections sections ~phys_of_vaddr
  in
  let phnum = List.length guess_segments in
  let sections =
    Layout.assign_offsets ~first_offset:(Layout.header_end ~phnum) sections
  in
  let segments =
    Array.of_list (Layout.load_segments_of_sections sections ~phys_of_vaddr)
  in
  {
    Types.entry = t.entry;
    sections;
    segments;
    symbols = Array.of_list (List.rev t.symbols);
  }
