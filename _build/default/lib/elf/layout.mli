(** File-offset layout for ELF images.

    The kernel builder places section data sequentially after the ELF and
    program headers, honouring each section's alignment; segments are then
    derived from contiguous runs of allocatable sections. *)

val align_up : int -> int -> int
(** [align_up v a] rounds [v] up to a multiple of [a] ([a] ≥ 1, a power of
    two is not required). Raises [Invalid_argument] if [a <= 0]. *)

val assign_offsets : first_offset:int -> Types.section array -> Types.section array
(** [assign_offsets ~first_offset sections] returns the sections with
    [offset] fields assigned sequentially from [first_offset], each
    aligned to its [addralign] (at least 1). NOBITS sections receive the
    running offset but consume no file space. Order is preserved. *)

val header_end : phnum:int -> int
(** [header_end ~phnum] is the file offset just past the ELF header and
    [phnum] program headers — the earliest legal section offset. *)

val file_end : Types.section array -> int
(** [file_end sections] is the offset just past the last byte of section
    data (NOBITS sections contribute nothing). *)

val load_segments_of_sections : Types.section array -> phys_of_vaddr:(int -> int) -> Types.segment list
(** [load_segments_of_sections sections ~phys_of_vaddr] builds one PT_LOAD
    per allocatable section run with uniform flags, mapping each segment's
    virtual address to its physical address with [phys_of_vaddr]. Runs
    break when flags change or when addresses are not contiguous (allowing
    for alignment padding up to one page). *)
