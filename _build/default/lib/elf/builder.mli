(** High-level ELF image assembly.

    Accumulates sections and symbols, then lays the file out: section
    offsets assigned after the headers, PT_LOAD segments derived from
    allocatable-section runs. The kernel image builder and the tests both
    assemble images through this interface instead of hand-computing
    offsets. *)

type t

val create : unit -> t

val add_section :
  t ->
  name:string ->
  sh_type:int ->
  flags:int ->
  addr:int ->
  ?addralign:int ->
  ?entsize:int ->
  ?mem_size:int ->
  bytes ->
  unit
(** [add_section t ~name ~sh_type ~flags ~addr data] appends a section.
    [addralign] defaults to 16. [mem_size] overrides the in-memory size
    for SHT_NOBITS sections (where [data] must be empty). Sections must be
    added in ascending [addr] order for allocatable sections; violations
    surface at {!finalize}. *)

val add_symbol :
  t -> name:string -> value:int -> size:int -> sym_type:int -> section:string -> unit
(** [add_symbol t ~name ~value ~size ~sym_type ~section] appends a symbol
    attached to the named section (which must already exist; raises
    [Invalid_argument] otherwise). *)

val set_entry : t -> int -> unit

val finalize : t -> phys_of_vaddr:(int -> int) -> Types.t
(** [finalize t ~phys_of_vaddr] assigns file offsets, derives PT_LOAD
    segments (physical addresses via [phys_of_vaddr]) and returns the
    completed image description. The builder may not be reused after. *)
