(* Serverless pool: the workload that motivates the paper. A function-as-
   a-service host boots a fresh microVM per invocation; every instance
   must come up fast AND with its own randomized layout. This example
   boots a pool of lambdas under each randomization scheme and reports:

   - invocation throughput (boots/second of host CPU budget, from the
     virtual clock), showing what (FG)KASLR costs the platform;
   - layout diversity across instances (all different — each invocation
     gets fresh randomization, fixing the zygote-reuse weakness discussed
     in §7);
   - the page-sharing trade-off of §6: how many guest pages the host
     could merge across instances, with and without a shared seed.

   Run with:  dune exec examples/serverless_pool.exe *)

open Imk_monitor

let pool_size = 12

let boot_lambda ws ~variant ~rando ~seed =
  let preset = Imk_kernel.Config.Aws in
  Imk_harness.Workspace.warm_all ws;
  let vm =
    Vm_config.make ~rando
      ~relocs_path:
        (if rando = Vm_config.Rando_off then None
         else Some (Imk_harness.Workspace.relocs_path ws preset variant))
      ~kernel_path:(Imk_harness.Workspace.vmlinux_path ws preset variant)
      ~kernel_config:(Imk_harness.Workspace.config ws preset variant)
      ~kallsyms:Vm_config.Kallsyms_deferred (* lambdas never read kallsyms *)
      ()
  in
  Imk_harness.Boot_runner.boot_once ~jitter:false ~seed
    ~cache:(Imk_harness.Workspace.cache ws)
    vm

(* content hashes of the nonzero pages holding the kernel image —
   KSM-style merging is content-based, so location is irrelevant, and
   all-zero pages merge trivially so they are excluded *)
let kernel_pages result =
  let mem = result.Vmm.mem in
  let page = 4096 in
  let zero_hash = Imk_util.Crc.crc32 (Bytes.make page '\000') 0 page in
  let p = result.Vmm.params in
  let lo = p.Imk_guest.Boot_params.phys_load in
  let hi = min (Imk_memory.Guest_mem.size mem) (lo + (8 * 1024 * 1024)) in
  let hashes = ref [] in
  let off = ref lo in
  while !off + page <= hi do
    let h = Imk_memory.Guest_mem.crc32_range mem ~pa:!off ~len:page in
    if h <> zero_hash then hashes := h :: !hashes;
    off := !off + page
  done;
  !hashes

let sharable a b =
  let bset = Hashtbl.create 1024 in
  List.iter (fun h -> Hashtbl.replace bset h ()) b;
  let shared = List.length (List.filter (Hashtbl.mem bset) a) in
  100. *. float_of_int shared /. float_of_int (max 1 (List.length a))

let run_pool ws ~name ~variant ~rando ~shared_seed =
  let results =
    List.init pool_size (fun i ->
        let seed =
          if shared_seed then 7777L else Int64.of_int (1000 + (i * 37))
        in
        boot_lambda ws ~variant ~rando ~seed)
  in
  let totals = List.map (fun (t, _) -> Imk_vclock.Trace.total t) results in
  let mean_ns =
    List.fold_left ( + ) 0 totals / List.length totals
  in
  let bases =
    List.sort_uniq compare
      (List.map
         (fun (_, r) -> r.Vmm.params.Imk_guest.Boot_params.virt_base)
         results)
  in
  let throughput = 1e9 /. float_of_int mean_ns in
  Printf.printf
    "%-26s mean boot %-10s -> %5.1f cold starts/s/core   %2d distinct layouts\n"
    name
    (Imk_util.Units.ms_string mean_ns)
    throughput (List.length bases);
  results

let () =
  let ws = Imk_harness.Workspace.create () in
  Printf.printf "serverless pool: %d lambda cold starts per scheme (aws kernel)\n\n"
    pool_size;
  let _ =
    run_pool ws ~name:"nokaslr (stock microVM)" ~variant:Imk_kernel.Config.Nokaslr
      ~rando:Vm_config.Rando_off ~shared_seed:false
  in
  let kaslr =
    run_pool ws ~name:"in-monitor KASLR" ~variant:Imk_kernel.Config.Kaslr
      ~rando:Vm_config.Rando_kaslr ~shared_seed:false
  in
  let fg =
    run_pool ws ~name:"in-monitor FGKASLR" ~variant:Imk_kernel.Config.Fgkaslr
      ~rando:Vm_config.Rando_fgkaslr ~shared_seed:false
  in
  Printf.printf
    "\nevery randomized instance got its own layout — unlike zygote \
     snapshot restores,\nwhich clone one layout across invocations (§7).\n";

  (* §6: memory density. Can the host still merge pages across VMs? *)
  Printf.printf "\npage-sharing across two FGKASLR lambdas (§6 memory density):\n";
  let a = kernel_pages (snd (List.nth fg 0)) in
  let b = kernel_pages (snd (List.nth fg 1)) in
  Printf.printf "  distinct seeds : %5.1f%% of kernel pages identical\n"
    (sharable a b);
  let grouped =
    run_pool ws ~name:"FGKASLR, host-grouped seed" ~variant:Imk_kernel.Config.Fgkaslr
      ~rando:Vm_config.Rando_fgkaslr ~shared_seed:true
  in
  let ga = kernel_pages (snd (List.nth grouped 0)) in
  let gb = kernel_pages (snd (List.nth grouped 1)) in
  Printf.printf "  shared seed    : %5.1f%% of kernel pages identical\n"
    (sharable ga gb);
  Printf.printf
    "\nin-monitor randomization lets the host trade diversity for density \
     by seed grouping —\nimpossible when guests self-randomize.\n";
  ignore kaslr
